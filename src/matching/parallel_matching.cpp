#include "matching/parallel_matching.hpp"

#include <algorithm>
#include <cmath>

#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace amix {
namespace {

// Message tags (field a); field b carries the tag's payload.
constexpr std::uint64_t kAlive = 1;    // b = phase coin
constexpr std::uint64_t kPropose = 2;  // b unused
constexpr std::uint64_t kAccept = 3;   // b unused

constexpr std::uint64_t kCoinStream = 0x6d617463682d636fULL;     // "match-co"
constexpr std::uint64_t kProposeStream = 0x6d617463682d7072ULL;  // "match-pr"

}  // namespace

MatchingStats distributed_greedy_matching(const Graph& g, std::uint64_t seed,
                                          RoundLedger& ledger,
                                          std::uint32_t max_phases) {
  AMIX_CHECK(g.num_nodes() >= 1);
  const NodeId n = g.num_nodes();
  const std::uint64_t rounds_at_entry = ledger.total();
  if (max_phases == 0) {
    const auto log2n = static_cast<std::uint32_t>(
        std::ceil(std::log2(std::max<double>(2.0, n))));
    max_phases = 12 * (log2n + 2) + 16;
  }

  MatchingStats out;

  // Termination detection: one BFS tree build (real kernel rounds), then
  // one convergecast charge per phase.
  const BfsTree term_tree = [&] {
    PhaseScope scope(ledger, "matching-termination");
    return congest::distributed_bfs_tree(g, 0, scope.ledger());
  }();

  // Per-node state. The handler for node v touches only index v, which is
  // the kernel's synchronous contract (bit-identical at any thread count).
  std::vector<NodeId> matched_to(n, kInvalidNode);
  std::vector<EdgeId> matched_edge(n, kInvalidEdge);
  std::vector<std::uint32_t> proposed_port(n, kInvalidNode);
  std::vector<std::uint8_t> coin(n, 0);
  std::uint32_t phase = 0;
  std::uint32_t sub = 0;          // advanced between run_rounds(1) calls
  std::uint64_t proposals = 0;    // kernel handlers run serially per query

  const congest::SyncNetwork::Handler handler =
      [&](NodeId v, const congest::Inbox& in, congest::Outbox& outbox) {
        if (sub == 0) {
          // Absorb last phase's ACCEPT (at most one: we proposed once).
          if (proposed_port[v] != kInvalidNode) {
            const auto slot = in.at(proposed_port[v]);
            if (slot.has_value() && slot->a == kAccept &&
                matched_to[v] == kInvalidNode) {
              matched_to[v] = g.neighbor(v, proposed_port[v]);
              matched_edge[v] = g.edge_at(v, proposed_port[v]);
            }
            proposed_port[v] = kInvalidNode;
          }
          if (matched_to[v] != kInvalidNode) return;
          coin[v] = static_cast<std::uint8_t>(
              keyed_u64(seed, kCoinStream,
                        (static_cast<std::uint64_t>(phase) << 32) | v) &
              1);
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            outbox.send(p, {kAlive, coin[v]});
          }
        } else if (sub == 1) {
          // Proposers pick one coin-0 ALIVE neighbor uniformly at random.
          if (matched_to[v] != kInvalidNode || coin[v] != 1 || in.empty()) {
            return;
          }
          std::uint32_t eligible = 0;
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            const auto slot = in.at(p);
            if (slot.has_value() && slot->a == kAlive && slot->b == 0) {
              ++eligible;
            }
          }
          if (eligible == 0) return;
          std::uint32_t pick = static_cast<std::uint32_t>(
              keyed_u64(seed, kProposeStream,
                        (static_cast<std::uint64_t>(phase) << 32) | v) %
              eligible);
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            const auto slot = in.at(p);
            if (!slot.has_value() || slot->a != kAlive || slot->b != 0) {
              continue;
            }
            if (pick-- == 0) {
              outbox.send(p, {kPropose, 0});
              proposed_port[v] = p;
              ++proposals;
              return;
            }
          }
        } else {
          // Responders accept the minimum-port proposal and commit.
          if (matched_to[v] != kInvalidNode || coin[v] != 0 || in.empty()) {
            return;
          }
          for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
            const auto slot = in.at(p);
            if (slot.has_value() && slot->a == kPropose) {
              outbox.send(p, {kAccept, 0});
              matched_to[v] = g.neighbor(v, p);
              matched_edge[v] = g.edge_at(v, p);
              return;
            }
          }
        }
      };

  // An edge with both endpoints unmatched means another phase is needed —
  // the predicate the charged convergecast evaluates.
  const auto is_maximal = [&] {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (matched_to[g.edge_u(e)] == kInvalidNode &&
          matched_to[g.edge_v(e)] == kInvalidNode) {
        return false;
      }
    }
    return true;
  };

  {
    PhaseScope scope(ledger, "matching");
    congest::SyncNetwork net(g, scope.ledger());
    for (;;) {
      sub = 0;
      net.run_rounds(handler, 1);  // delivers pending ACCEPTs, sends ALIVE
      // Each maximality check is one aggregate over the BFS tree.
      congest::charge_pipelined_convergecast(term_tree.height, 1,
                                             scope.ledger());
      if (is_maximal()) break;
      if (phase >= max_phases) break;  // cap tripped: verification fails loud
      sub = 1;
      net.run_rounds(handler, 1);
      sub = 2;
      net.run_rounds(handler, 1);
      ++phase;
    }
    out.kernel_rounds = net.rounds_executed();
  }

  out.phases = phase;
  out.proposals = proposals;
  out.maximal = is_maximal();

  // Central verification: every match mutual, every matched edge real.
  out.consistent = true;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId u = matched_to[v];
    if (u == kInvalidNode) continue;
    if (u >= n || matched_to[u] != v || matched_edge[u] != matched_edge[v] ||
        g.other_endpoint(matched_edge[v], v) != u) {
      out.consistent = false;
      break;
    }
  }
  if (out.consistent) {
    for (NodeId v = 0; v < n; ++v) {
      if (matched_to[v] != kInvalidNode && v < matched_to[v]) {
        out.edges.push_back(matched_edge[v]);
      }
    }
    std::sort(out.edges.begin(), out.edges.end());
  }

  out.rounds = ledger.total() - rounds_at_entry;

  // Ghaffari–Li matching envelope: phases vs the O(log n) expectation.
  const auto log2n = static_cast<std::uint64_t>(
      std::ceil(std::log2(std::max<double>(2.0, n))));
  obs::metric_gauge_max("glmatch/phases_over_log2n_x1000",
                        obs::ratio_x1000(out.phases, log2n));
  obs::metric_gauge_set("matching/matched_edges", out.edges.size());
  obs::metric_gauge_max("matching/phases", out.phases);
  return out;
}

}  // namespace amix
