#pragma once

// Approximate maximum matching via the Israeli–Itai style parallel
// proposal algorithm, run on the literal CONGEST kernel.
//
// This is the first of the Ghaffari–Li "transformations from parallel
// algorithms" ops (arXiv 1805.04764): the parallel algorithm's rounds are
// edge-local, so each one ports to O(1) CONGEST rounds directly — the
// almost-mixing-time machinery is only needed for its *global* steps
// (termination detection), which we run as a BFS-tree convergecast.
//
// One phase is three kernel rounds:
//
//   ALIVE    every unmatched node advertises itself with a per-phase coin
//            (keyed_u64(seed, phase, v) — shared randomness, no state);
//   PROPOSE  each coin-1 node picks one coin-0 ALIVE neighbor uniformly
//            at random and proposes;
//   ACCEPT   each coin-0 node accepts the minimum-port proposal it
//            received and commits; the proposer commits on receipt.
//
// Only the accept side ever commits first, and a proposer sends exactly
// one proposal per phase, so no node can end up in two matches — and a
// maximal matching is a 1/2-approximation of the maximum. Phases repeat
// until the matching is maximal (checked by a charged convergecast over
// a BFS tree) or the phase cap trips. Expected phases: O(log n).
//
// Fail-loud contract: the result is centrally verified — `consistent`
// (every match is mutual, on a real shared edge) and `maximal` (no edge
// with both endpoints unmatched). Under kernel message drops the
// algorithm may terminate early or inconsistently; verification then
// reports it rather than returning a silently wrong matching.

#include <cstdint>
#include <vector>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"

namespace amix {

struct MatchingStats {
  std::vector<EdgeId> edges;      // matched edges, ascending
  std::uint32_t phases = 0;       // proposal phases executed
  std::uint64_t proposals = 0;    // PROPOSE messages sent, total
  std::uint64_t kernel_rounds = 0;  // sync-network rounds (3 per phase)
  std::uint64_t rounds = 0;       // total charged, incl. termination casts
  bool maximal = false;           // centrally verified
  bool consistent = false;        // centrally verified
};

/// Run the matching to maximality (or `max_phases`; 0 derives a generous
/// O(log n) cap). All randomness is a pure function of `seed`; charges
/// land on `ledger` ("matching" kernel rounds + "matching-termination"
/// casts).
MatchingStats distributed_greedy_matching(const Graph& g, std::uint64_t seed,
                                          RoundLedger& ledger,
                                          std::uint32_t max_phases = 0);

}  // namespace amix
