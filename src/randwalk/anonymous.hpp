#pragma once

// Anonymous counting walks.
//
// When walk tokens carry no identity, all tokens crossing one arc in one
// step can be aggregated into a single O(log n)-bit COUNT message — so a
// parallel step of arbitrarily many anonymous walks costs exactly one
// CONGEST round. This is the communication pattern behind the in-band
// mixing-time estimator (tau_estimator.hpp): the paper assumes tau_mix(G)
// is known to the nodes; anonymous walks let them measure it for
// O(tau_mix + D) rounds per probe instead of the id-carrying walks'
// congestion-dependent cost.
//
// The simulation evolves exact per-node token counts with true binomial/
// multinomial sampling (not expectations), so the estimator sees the same
// fluctuations a real execution would.

#include <cstdint>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"
#include "graph/spectral.hpp"
#include "util/rng.hpp"

namespace amix {

/// Binomial(n, p) sample: exact for small n, normal approximation with
/// clamping for large n (error far below the estimator's tolerance).
std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng);

class AnonymousWalks {
 public:
  /// `counts[v]` = tokens initially at node v.
  AnonymousWalks(const CommGraph& g, std::vector<std::uint64_t> counts);

  /// Advance all tokens one lazy (or 2Delta-regular) step. Charges exactly
  /// round_cost() base rounds: one count message per arc.
  void step(WalkKind kind, Rng& rng, RoundLedger& ledger);

  void run(WalkKind kind, std::uint32_t steps, Rng& rng, RoundLedger& ledger);

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total_tokens() const { return total_; }
  std::uint32_t steps_taken() const { return steps_; }

 private:
  const CommGraph& g_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> next_;
  std::uint64_t total_ = 0;
  std::uint32_t steps_ = 0;
};

}  // namespace amix
