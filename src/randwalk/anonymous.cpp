#include "randwalk/anonymous.hpp"

#include <algorithm>
#include <cmath>

namespace amix {

std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng) {
  AMIX_CHECK(p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (n <= 64) {
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < n; ++i) hits += rng.next_bool(p);
    return hits;
  }
  // Normal approximation (n*p*(1-p) is large for all callers that reach
  // here); Box-Muller with clamping to [0, n].
  const double mean = static_cast<double>(n) * p;
  const double sigma = std::sqrt(mean * (1.0 - p));
  const double u1 = std::max(rng.next_double(), 1e-300);
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double x = std::round(mean + sigma * z);
  return static_cast<std::uint64_t>(
      std::clamp(x, 0.0, static_cast<double>(n)));
}

AnonymousWalks::AnonymousWalks(const CommGraph& g,
                               std::vector<std::uint64_t> counts)
    : g_(g), counts_(std::move(counts)), next_(g.num_nodes(), 0) {
  AMIX_CHECK(counts_.size() == g.num_nodes());
  for (const auto c : counts_) total_ += c;
}

void AnonymousWalks::step(WalkKind kind, Rng& rng, RoundLedger& ledger) {
  const std::uint32_t n = g_.num_nodes();
  std::fill(next_.begin(), next_.end(), 0);
  const double inv2delta = 1.0 / (2.0 * std::max(1u, g_.max_degree()));
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint64_t here = counts_[v];
    if (here == 0) continue;
    const std::uint32_t deg = g_.degree(v);
    if (deg == 0) {
      next_[v] += here;
      continue;
    }
    // Split: stay mass, then a multinomial over arcs via chained binomials.
    const double stay_p =
        kind == WalkKind::kLazy ? 0.5 : 1.0 - deg * inv2delta;
    const std::uint64_t stay = binomial_sample(here, stay_p, rng);
    next_[v] += stay;
    here -= stay;
    for (std::uint32_t p = 0; p < deg && here > 0; ++p) {
      const double share = 1.0 / static_cast<double>(deg - p);
      const std::uint64_t cross =
          p + 1 == deg ? here : binomial_sample(here, share, rng);
      next_[g_.neighbor(v, p)] += cross;
      here -= cross;
    }
  }
  counts_.swap(next_);
  ++steps_;
  // One count message per arc: one round of this graph.
  ledger.charge(g_.round_cost());
}

void AnonymousWalks::run(WalkKind kind, std::uint32_t steps, Rng& rng,
                         RoundLedger& ledger) {
  for (std::uint32_t t = 0; t < steps; ++t) step(kind, rng, ledger);
}

}  // namespace amix
