#include "randwalk/walk_engine.hpp"

#include <algorithm>

namespace amix {

ParallelWalkEngine::ParallelWalkEngine(const CommGraph& g, Rng rng)
    : g_(g), rng_(rng) {}

std::vector<std::uint32_t> ParallelWalkEngine::run(
    std::span<const std::uint32_t> starts, WalkKind kind, std::uint32_t steps,
    RoundLedger& ledger, WalkStats* stats) {
  std::vector<std::uint32_t> pos(starts.begin(), starts.end());
  for (const std::uint32_t s : pos) {
    AMIX_CHECK(s < g_.num_nodes());
  }

  TokenTransport transport(g_);
  WalkStats local{};
  local.steps = steps;

  // Node-load tracking with epoch stamps (avoids O(n) clears per step).
  std::vector<std::uint32_t> load(g_.num_nodes(), 0);
  std::vector<std::uint32_t> stamp(g_.num_nodes(), 0);
  std::uint32_t epoch = 0;

  const std::uint32_t two_delta = 2 * std::max(1u, g_.max_degree());

  for (std::uint32_t t = 0; t < steps; ++t) {
    for (auto& p : pos) {
      const std::uint32_t deg = g_.degree(p);
      if (deg == 0) continue;  // isolated in this overlay; walk is stuck
      std::uint32_t port = UINT32_MAX;
      if (kind == WalkKind::kLazy) {
        // Stay w.p. 1/2, else uniform incident arc.
        const std::uint64_t r = rng_.next_below(2ULL * deg);
        if (r < deg) port = static_cast<std::uint32_t>(r);
      } else {
        // 2Delta-regular: cross each incident arc w.p. 1/(2*Delta).
        const std::uint64_t r = rng_.next_below(two_delta);
        if (r < deg) port = static_cast<std::uint32_t>(r);
      }
      if (port != UINT32_MAX) {
        transport.move(p, port);
        p = g_.neighbor(p, port);
        ++local.total_moves;
      }
    }
    transport.commit_step(ledger);

    ++epoch;
    for (const std::uint32_t p : pos) {
      if (stamp[p] != epoch) {
        stamp[p] = epoch;
        load[p] = 0;
      }
      ++load[p];
      local.max_node_load = std::max(local.max_node_load, load[p]);
    }
  }

  local.graph_rounds = transport.total_graph_rounds();
  local.base_rounds = local.graph_rounds * g_.round_cost();
  local.max_transport_residency = transport.max_node_residency();
  if (stats != nullptr) *stats = local;
  return pos;
}

}  // namespace amix
