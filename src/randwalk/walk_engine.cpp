#include "randwalk/walk_engine.hpp"

#include <algorithm>
#include <bit>

#include "congest/instrument.hpp"
#include "obs/trace.hpp"

namespace amix {

namespace {

/// Lemma 2.4 envelope with constant 1: k·Δ + log2 n, where k is the
/// smallest integer with (walks starting at v) <= k·d(v) for every v.
/// The recorded ratio observed/envelope is what BoundChecker holds
/// against its configured constant.
std::uint64_t lemma24_envelope(const CommGraph& g,
                               std::span<const std::uint32_t> starts) {
  std::vector<std::uint32_t> at(g.num_nodes(), 0);
  for (const std::uint32_t s : starts) ++at[s];
  std::uint64_t k_hat = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (at[v] == 0) continue;
    const std::uint32_t d = std::max(1u, g.degree(v));
    k_hat = std::max<std::uint64_t>(k_hat, (at[v] + d - 1) / d);
  }
  const std::uint64_t log_n =
      std::bit_width(std::uint64_t{std::max(2u, g.num_nodes())} - 1);
  return k_hat * std::max(1u, g.max_degree()) + log_n;
}

}  // namespace

namespace {

/// Epoch-stamped sparse per-node counter (avoids O(n) clears per step).
/// One instance per shard during the sweep, one for the ordered merge.
struct NodeLoadCounter {
  std::vector<std::uint32_t> count;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> touched;
  std::uint32_t epoch = 0;
  std::uint32_t step_max = 0;

  void init(std::uint32_t n) {
    count.assign(n, 0);
    stamp.assign(n, 0);
  }
  void begin_step() {
    ++epoch;
    touched.clear();
    step_max = 0;
  }
  void add(std::uint32_t v, std::uint32_t by) {
    if (stamp[v] != epoch) {
      stamp[v] = epoch;
      count[v] = 0;
      touched.push_back(v);
    }
    count[v] += by;
    if (count[v] > step_max) step_max = count[v];
  }
};

}  // namespace

ParallelWalkEngine::ParallelWalkEngine(const CommGraph& g, Rng rng,
                                       ExecPolicy exec)
    : g_(g), rng_(rng), exec_(exec) {}

std::vector<std::uint32_t> ParallelWalkEngine::run(
    std::span<const std::uint32_t> starts, WalkKind kind, std::uint32_t steps,
    RoundLedger& ledger, WalkStats* stats) {
  const obs::Span span(ledger, "walks/run");
  std::vector<std::uint32_t> pos(starts.begin(), starts.end());
  for (const std::uint32_t s : pos) {
    AMIX_CHECK(s < g_.num_nodes());
  }

  TokenTransport transport(g_);
  WalkStats local{};
  local.steps = steps;

  // One keyed stream per run: walk i's step t draws are pure functions of
  // (run_key, i, t), so sharding the sweep cannot change any trajectory.
  const std::uint64_t run_key = rng_();

  const std::uint32_t num_shards = exec_.shards();
  std::vector<TokenTransport::Shard> shards = transport.make_shards(num_shards);
  std::vector<NodeLoadCounter> shard_load(num_shards);
  for (auto& lc : shard_load) lc.init(g_.num_nodes());
  NodeLoadCounter merged_load;
  merged_load.init(g_.num_nodes());

  const std::uint32_t two_delta = 2 * std::max(1u, g_.max_degree());

  for (std::uint32_t t = 0; t < steps; ++t) {
    // Instrument callbacks only fire on the committing thread: shards log
    // their moves and the commit merge replays them in walk order.
    const bool log_moves = congest::instrument() != nullptr;

    parallel_for_shards(
        exec_, pos.size(),
        [&](std::uint32_t s, std::size_t lo, std::size_t hi) {
          TokenTransport::Shard& shard = shards[s];
          shard.begin_step(log_moves);
          NodeLoadCounter& lc = shard_load[s];
          lc.begin_step();
          for (std::size_t i = lo; i < hi; ++i) {
            std::uint32_t p = pos[i];
            const std::uint32_t deg = g_.degree(p);
            if (deg == 0) {
              lc.add(p, 1);  // isolated in this overlay; walk is stuck
              continue;
            }
            std::uint32_t port = UINT32_MAX;
            if (kind == WalkKind::kLazy) {
              // Stay w.p. 1/2, else uniform incident arc.
              const std::uint64_t r =
                  keyed_below(run_key, i, t, 2ULL * deg);
              if (r < deg) port = static_cast<std::uint32_t>(r);
            } else {
              // 2Delta-regular: cross each incident arc w.p. 1/(2*Delta).
              const std::uint64_t r = keyed_below(run_key, i, t, two_delta);
              if (r < deg) port = static_cast<std::uint32_t>(r);
            }
            if (port != UINT32_MAX) {
              shard.move(p, port);
              p = g_.neighbor(p, port);
              pos[i] = p;
            }
            lc.add(p, 1);
          }
        });

    for (const TokenTransport::Shard& s : shards) {
      local.total_moves += s.step_moves();
    }
    transport.commit_step_shards(shards, ledger);

    // Ordered merge of the per-shard node loads (sums then max — both
    // independent of shard boundaries, so this matches the serial sweep).
    merged_load.begin_step();
    for (const NodeLoadCounter& lc : shard_load) {
      for (const std::uint32_t v : lc.touched) {
        merged_load.add(v, lc.count[v]);
      }
    }
    local.max_node_load = std::max(local.max_node_load, merged_load.step_max);
  }

  local.graph_rounds = transport.total_graph_rounds();
  local.base_rounds = local.graph_rounds * g_.round_cost();
  local.max_transport_residency = transport.max_node_residency();
  if (obs::recorder() != nullptr && !pos.empty() && steps > 0) {
    obs::metric_counter_add("walk/moves", local.total_moves);
    obs::metric_gauge_max("walk/max_node_load", local.max_node_load);
    obs::metric_gauge_max("walk/max_transport_residency",
                          local.max_transport_residency);
    obs::metric_gauge_max(
        "lemma24/load_over_envelope_x1000",
        obs::ratio_x1000(local.max_node_load, lemma24_envelope(g_, starts)));
  }
  if (stats != nullptr) *stats = local;
  return pos;
}

}  // namespace amix
