#include "randwalk/walk_engine.hpp"

#include <algorithm>
#include <bit>

#include "congest/instrument.hpp"
#include "obs/trace.hpp"

namespace amix {

namespace {

/// Lemma 2.4 envelope with constant 1: k·Δ + log2 n, where k is the
/// smallest integer with (walks starting at v) <= k·d(v) for every v.
/// The recorded ratio observed/envelope is what BoundChecker holds
/// against its configured constant.
std::uint64_t lemma24_envelope(const CommGraph& g,
                               std::span<const std::uint32_t> starts) {
  std::vector<std::uint32_t> at(g.num_nodes(), 0);
  for (const std::uint32_t s : starts) ++at[s];
  std::uint64_t k_hat = 0;
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    if (at[v] == 0) continue;
    const std::uint32_t d = std::max(1u, g.degree(v));
    k_hat = std::max<std::uint64_t>(k_hat, (at[v] + d - 1) / d);
  }
  const std::uint64_t log_n =
      std::bit_width(std::uint64_t{std::max(2u, g.num_nodes())} - 1);
  return k_hat * std::max(1u, g.max_degree()) + log_n;
}

}  // namespace

namespace {

using randwalk_detail::NodeLoadCounter;

/// Portable read-prefetch hint (no-op off GCC/Clang). The sweep's latency
/// is bound by the offsets[pos] gather — positions after a few steps are
/// near-random node ids, so every walk's degree lookup is a cold line.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#endif
}

/// Everything one step's sweep reads, passed BY VALUE. The sweep is a
/// free function over this struct rather than a capturing lambda on
/// purpose: a by-reference closure handed to parallel_for_shards has its
/// address escape into the parallel dispatch, after which the optimizer
/// must re-load every captured pointer from the closure inside the
/// per-walk loop (measured at ~25% of the sweep). By-value parameters of
/// a free function are non-escaping locals, so the CSR base pointers and
/// walk positions stay in registers.
struct SweepCtx {
  std::uint32_t* pos;
  TokenTransport::Shard* shards;
  NodeLoadCounter* shard_load;  // null when occupancy is not tracked
  CommView cv;
  std::uint64_t run_key;
  std::uint32_t t;
  std::uint32_t two_delta;
  WalkKind kind;
  bool log_moves;
};

/// Walks per SoA block of the sweep below: enough in flight to cover the
/// offsets-gather latency with prefetches, small enough that the three
/// block arrays (~3 KB) live in L1.
constexpr std::size_t kSweepBlock = 256;

void sweep_shard(const SweepCtx c, std::uint32_t s, std::size_t lo,
                 std::size_t hi) {
  TokenTransport::Shard& shard = c.shards[s];
  shard.begin_step(c.log_moves);
  NodeLoadCounter* const lc =
      c.shard_load == nullptr ? nullptr : c.shard_load + s;
  if (lc != nullptr) lc->begin_step();

  // Blocked SoA sweep. Per block of up to kSweepBlock walks:
  //   pass 1 gathers positions and prefetches each walk's offsets row —
  //     the random-access load the whole step serializes on;
  //   pass 2 reads the (now resident) degrees, draws, and picks the port
  //     branchlessly (port = r < deg ? r : MAX compiles to a cmov — the
  //     stay/move decision is a per-walk coin flip no predictor learns),
  //     prefetching the neighbor entry movers will read;
  //   pass 3 applies moves in walk order, preserving the shard.move()
  //     sequence — and hence the instrument-mode log replay — exactly.
  // Trajectory equivalence with the scalar loop: keyed draws are pure
  // functions of (run_key, i, t), so restructuring the iteration cannot
  // shift any walk's randomness. deg == 0 walks burn one keyed draw here
  // (bound clamped to 2) that the scalar loop skipped — discarded keyed
  // draws are invisible to every other draw, and r < 0 never moves them.
  std::uint32_t bpos[kSweepBlock];
  std::uint64_t boff[kSweepBlock];
  std::uint32_t bport[kSweepBlock];
  const bool lazy = c.kind == WalkKind::kLazy;
  for (std::size_t blo = lo; blo < hi; blo += kSweepBlock) {
    const std::size_t bn = std::min(kSweepBlock, hi - blo);
    for (std::size_t j = 0; j < bn; ++j) {
      const std::uint32_t p = c.pos[blo + j];
      bpos[j] = p;
      prefetch_ro(&c.cv.offsets[p]);
    }
    for (std::size_t j = 0; j < bn; ++j) {
      const std::uint32_t p = bpos[j];
      const std::uint64_t off = c.cv.offsets[p];
      const std::uint32_t deg =
          static_cast<std::uint32_t>(c.cv.offsets[p + 1] - off);
      const std::uint64_t bound =
          lazy ? 2ULL * std::max(1u, deg) : c.two_delta;
      const std::uint64_t r = keyed_below(c.run_key, blo + j, c.t, bound);
      const std::uint32_t port =
          r < deg ? static_cast<std::uint32_t>(r) : UINT32_MAX;
      boff[j] = off;
      bport[j] = port;
      if (port != UINT32_MAX) prefetch_ro(&c.cv.nbrs[off + port]);
    }
    for (std::size_t j = 0; j < bn; ++j) {
      const std::uint32_t port = bport[j];
      std::uint32_t p = bpos[j];
      if (port != UINT32_MAX) {
        shard.move(p, port);
        p = c.cv.nbrs[boff[j] + port];
        c.pos[blo + j] = p;
        // Logging shards defer tallies to the replay, so the merge cannot
        // read arrivals from them; count movers here.
        if (lc != nullptr && c.log_moves) lc->add(p, 1);
      } else if (lc != nullptr) {
        lc->add(p, 1);
      }
    }
  }
}

}  // namespace

ParallelWalkEngine::ParallelWalkEngine(const CommGraph& g, Rng rng,
                                       ExecPolicy exec)
    : g_(g),
      rng_(rng),
      exec_(exec),
      // The sweep runs on the flat CSR view: degree/neighbor inside the
      // per-walk loop are array reads off one contiguous block, no
      // dispatch.
      cv_(g.view()),
      transport_(g),
      shards_(transport_.make_shards(exec_.shards())) {}

std::vector<std::uint32_t> ParallelWalkEngine::run(
    std::span<const std::uint32_t> starts, WalkKind kind, std::uint32_t steps,
    RoundLedger& ledger, WalkStats* stats) {
  const obs::Span span(ledger, "walks/run");
  std::vector<std::uint32_t> pos(starts.begin(), starts.end());
  for (const std::uint32_t s : pos) {
    AMIX_CHECK(s < g_.num_nodes());
  }

  // Persistent scratch: the transport (and its O(num_arcs) tallies) and
  // the shard accumulators are engine members; per-step tallies are
  // already clean (each commit clears them), only the cross-run stats
  // need zeroing for this run's figures to be per-run.
  transport_.reset_run_stats();
  WalkStats local{};
  local.steps = steps;

  // One keyed stream per run: walk i's step t draws are pure functions of
  // (run_key, i, t), so sharding the sweep cannot change any trajectory.
  const std::uint64_t run_key = rng_();

  const CommView cv = cv_;

  const std::uint32_t num_shards = exec_.shards();
  std::vector<TokenTransport::Shard>& shards = shards_;

  const std::uint32_t two_delta = 2 * std::max(1u, cv.max_degree);

  // Per-node occupancy (Lemma 2.4 telemetry) is pure observation: it
  // never feeds trajectories or the ledger, so when nobody will read it
  // (no stats out-param, no recorder) the sweep skips tracking it. When
  // it IS tracked, the sweep only counts walks that STAY — movers are
  // already tallied per node by the transport shards, and the merge sums
  // stays + arrivals before the commit clears the shard tallies.
  // Counters are lazily sized on the first observed run and reused after
  // (their epoch stamps stay valid across runs by monotone increment).
  const bool need_node_load = stats != nullptr || obs::recorder() != nullptr;
  if (need_node_load && !node_load_ready_) {
    shard_load_.resize(num_shards);
    for (auto& lc : shard_load_) lc.init(cv.num_nodes);
    merged_load_.init(cv.num_nodes);
    node_load_ready_ = true;
  }
  std::vector<NodeLoadCounter>& shard_load = shard_load_;
  NodeLoadCounter& merged_load = merged_load_;

  for (std::uint32_t t = 0; t < steps; ++t) {
    // Instrument callbacks only fire on the committing thread: shards log
    // their moves and the commit merge replays them in walk order.
    const bool log_moves = congest::instrument() != nullptr;

    const SweepCtx ctx{pos.data(),
                       shards.data(),
                       need_node_load ? shard_load.data() : nullptr,
                       cv,
                       run_key,
                       t,
                       two_delta,
                       kind,
                       log_moves};
    parallel_for_shards(exec_, pos.size(),
                        [ctx](std::uint32_t s, std::size_t lo,
                              std::size_t hi) { sweep_shard(ctx, s, lo, hi); });

    for (const TokenTransport::Shard& s : shards) {
      local.total_moves += s.step_moves();
    }

    // Ordered merge of the per-shard node loads (sums then max — both
    // independent of shard boundaries, so this matches a serial count of
    // every walk's post-step position). Runs before the commit because
    // the commit clears the shard arrival tallies.
    if (need_node_load) {
      merged_load.begin_step();
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        const NodeLoadCounter& lc = shard_load[s];
        for (const std::uint32_t v : lc.touched) {
          merged_load.add(v, lc.count[v]);
        }
        if (!log_moves) {
          if (shards[s].arrivals_listed()) {
            for (const std::uint32_t w : shards[s].step_arrival_nodes()) {
              merged_load.add(w, shards[s].step_arrivals(w));
            }
          } else {
            // The shard went dense: its arrival list is not exhaustive,
            // so fold in every node with a nonzero tally.
            for (std::uint32_t w = 0; w < cv.num_nodes; ++w) {
              const std::uint32_t a = shards[s].step_arrivals(w);
              if (a != 0) merged_load.add(w, a);
            }
          }
        }
      }
      local.max_node_load =
          std::max(local.max_node_load, merged_load.max_over_touched());
    }

    transport_.commit_step_shards(shards, ledger);
  }

  local.graph_rounds = transport_.total_graph_rounds();
  local.base_rounds = local.graph_rounds * cv.round_cost;
  local.max_transport_residency = transport_.max_node_residency();
  if (obs::recorder() != nullptr && !pos.empty() && steps > 0) {
    obs::metric_counter_add("walk/moves", local.total_moves);
    obs::metric_gauge_max("walk/max_node_load", local.max_node_load);
    obs::metric_gauge_max("walk/max_transport_residency",
                          local.max_transport_residency);
    obs::metric_gauge_max(
        "lemma24/load_over_envelope_x1000",
        obs::ratio_x1000(local.max_node_load, lemma24_envelope(g_, starts)));
  }
  if (stats != nullptr) *stats = local;
  return pos;
}

}  // namespace amix
