#pragma once

// Parallel random walks on any CommGraph, with Lemma 2.4/2.5 accounting.
//
// The engine advances all walks synchronously. Per parallel step, each
// walk either stays (lazy / regular self-loop mass) or crosses one arc;
// the step is then committed through TokenTransport, charging
// max-arc-load * round_cost() base rounds — the optimal realization of the
// Lemma 2.5 schedule. The engine also tracks the maximum number of walks
// resident at a single node (the Lemma 2.4 statistic).
//
// Randomness is counter-based: one run key is drawn from the engine's Rng
// per run(), and walk i's step t then draws keyed_below(key, i, t, ·) —
// a pure function of the key, never of execution order. That is what lets
// run() shard the walk sweep over threads (ExecPolicy) while staying
// bit-identical to the serial sweep: trajectories don't depend on which
// thread advances them, and the sharded TokenTransport merge is
// order-fixed. See DESIGN.md Section 8.

#include <cstdint>
#include <span>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"
#include "congest/token_transport.hpp"
#include "graph/spectral.hpp"  // WalkKind
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amix {

struct WalkStats {
  std::uint64_t graph_rounds = 0;    // rounds of the walked graph
  std::uint64_t base_rounds = 0;     // graph_rounds * round_cost
  std::uint32_t max_node_load = 0;   // Lemma 2.4: peak walks at one node
  /// Transport-level Lemma 2.4 statistic: peak tokens *arriving* at one
  /// node in a single committed step (excludes walks that stayed put).
  std::uint32_t max_transport_residency = 0;
  std::uint64_t total_moves = 0;     // arc crossings over all steps
  std::uint32_t steps = 0;
};

class ParallelWalkEngine {
 public:
  ParallelWalkEngine(const CommGraph& g, Rng rng, ExecPolicy exec = {});

  /// Advance walks starting at `starts` for `steps` parallel steps.
  /// Returns final positions (same order as starts). Charges the ledger.
  std::vector<std::uint32_t> run(std::span<const std::uint32_t> starts,
                                 WalkKind kind, std::uint32_t steps,
                                 RoundLedger& ledger,
                                 WalkStats* stats = nullptr);

  /// Charge the ledger for re-running (or reversing) a previously measured
  /// run: reversal retraces the recorded paths, so its schedule cost equals
  /// the forward cost (Section 3.1.1 "running the walks in reverse").
  static void charge_rerun(const WalkStats& stats, RoundLedger& ledger) {
    ledger.charge(stats.base_rounds);
  }

 private:
  const CommGraph& g_;
  Rng rng_;
  ExecPolicy exec_;
};

}  // namespace amix
