#pragma once

// Parallel random walks on any CommGraph, with Lemma 2.4/2.5 accounting.
//
// The engine advances all walks synchronously. Per parallel step, each
// walk either stays (lazy / regular self-loop mass) or crosses one arc;
// the step is then committed through TokenTransport, charging
// max-arc-load * round_cost() base rounds — the optimal realization of the
// Lemma 2.5 schedule. The engine also tracks the maximum number of walks
// resident at a single node (the Lemma 2.4 statistic).
//
// Randomness is counter-based: one run key is drawn from the engine's Rng
// per run(), and walk i's step t then draws keyed_below(key, i, t, ·) —
// a pure function of the key, never of execution order. That is what lets
// run() shard the walk sweep over threads (ExecPolicy) while staying
// bit-identical to the serial sweep: trajectories don't depend on which
// thread advances them, and the sharded TokenTransport merge is
// order-fixed. See DESIGN.md Section 8.

#include <cstdint>
#include <span>
#include <vector>

#include "congest/comm_graph.hpp"
#include "congest/round_ledger.hpp"
#include "congest/token_transport.hpp"
#include "graph/spectral.hpp"  // WalkKind
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace amix {

namespace randwalk_detail {

/// Epoch-stamped sparse per-node counter (avoids O(n) clears per step).
/// One instance per shard during the sweep, one for the ordered merge.
/// The epoch survives across runs — reusing a counter only needs the
/// stamps to never equal a future epoch, which monotone increment gives —
/// so the engine keeps these as persistent scratch.
struct NodeLoadCounter {
  std::vector<std::uint32_t> count;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> touched;
  std::uint32_t epoch = 0;

  void init(std::uint32_t n) {
    count.assign(n, 0);
    stamp.assign(n, 0);
  }
  void begin_step() {
    ++epoch;
    touched.clear();
  }
  /// No max tracking here: add() sits on the per-walk sweep path, and the
  /// step maximum is a one-pass scan of `touched` after the sums settle.
  void add(std::uint32_t v, std::uint32_t by) {
    if (stamp[v] != epoch) {
      stamp[v] = epoch;
      count[v] = 0;
      touched.push_back(v);
    }
    count[v] += by;
  }
  std::uint32_t max_over_touched() const {
    std::uint32_t mx = 0;
    for (const std::uint32_t v : touched) mx = std::max(mx, count[v]);
    return mx;
  }
};

}  // namespace randwalk_detail

struct WalkStats {
  std::uint64_t graph_rounds = 0;    // rounds of the walked graph
  std::uint64_t base_rounds = 0;     // graph_rounds * round_cost
  std::uint32_t max_node_load = 0;   // Lemma 2.4: peak walks at one node
  /// Transport-level Lemma 2.4 statistic: peak tokens *arriving* at one
  /// node in a single committed step (excludes walks that stayed put).
  std::uint32_t max_transport_residency = 0;
  std::uint64_t total_moves = 0;     // arc crossings over all steps
  std::uint32_t steps = 0;
};

class ParallelWalkEngine {
 public:
  ParallelWalkEngine(const CommGraph& g, Rng rng, ExecPolicy exec = {});

  /// Advance walks starting at `starts` for `steps` parallel steps.
  /// Returns final positions (same order as starts). Charges the ledger.
  ///
  /// Callable repeatedly: the transport tallies, shard accumulators, and
  /// occupancy counters are engine members sized once at construction and
  /// reused across runs — a hierarchy build issuing thousands of runs on
  /// one overlay pays the O(num_arcs) allocations once, and stats still
  /// report per-run figures (cross-run accumulators reset on entry).
  std::vector<std::uint32_t> run(std::span<const std::uint32_t> starts,
                                 WalkKind kind, std::uint32_t steps,
                                 RoundLedger& ledger,
                                 WalkStats* stats = nullptr);

  /// Charge the ledger for re-running (or reversing) a previously measured
  /// run: reversal retraces the recorded paths, so its schedule cost equals
  /// the forward cost (Section 3.1.1 "running the walks in reverse").
  static void charge_rerun(const WalkStats& stats, RoundLedger& ledger) {
    ledger.charge(stats.base_rounds);
  }

 private:
  const CommGraph& g_;
  Rng rng_;
  ExecPolicy exec_;
  // Persistent per-engine scratch (see run()). cv_ is the flat CSR view
  // the sweeps run on; valid as long as g_ — which the engine already
  // references — is alive and unmodified.
  CommView cv_;
  TokenTransport transport_;
  std::vector<TokenTransport::Shard> shards_;
  // Occupancy counters are Lemma 2.4 telemetry only; allocated lazily on
  // the first run that observes them (stats out-param or trace recorder).
  std::vector<randwalk_detail::NodeLoadCounter> shard_load_;
  randwalk_detail::NodeLoadCounter merged_load_;
  bool node_load_ready_ = false;
};

}  // namespace amix
