#pragma once

// Mixing-time measurement for CommGraphs (overlays included).
//
// The hierarchy builder needs a walk length that mixes each overlay; these
// helpers evolve exact distributions on a CommGraph (Definition 2.1 /
// Definition 2.2 semantics) so both tests and the builder's defaults can be
// validated against ground truth.

#include <cstdint>

#include "congest/comm_graph.hpp"
#include "graph/spectral.hpp"
#include "util/rng.hpp"

namespace amix {

/// Definition 2.1 criterion from a single start on a CommGraph.
/// Returns max_t + 1 if not mixed. Nodes with degree 0 are excluded from
/// the criterion (they are unreachable overlay slots).
std::uint32_t comm_mixing_time_from_start(const CommGraph& g, WalkKind kind,
                                          std::uint32_t src,
                                          std::uint32_t max_t);

/// Max over sampled starts.
std::uint32_t comm_mixing_time_sampled(const CommGraph& g, WalkKind kind,
                                       std::uint32_t samples, Rng& rng,
                                       std::uint32_t max_t);

}  // namespace amix
