#include "randwalk/mixing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace amix {
namespace {

// The distribution evolution sweeps run on the flat CommView: the per-step
// neighbor loops are array reads, and the 2Delta normalizer is computed
// once per probe from the view's cached max_degree instead of re-derived
// (formerly an O(n) virtual scan) on every step.
void comm_step(const CommView& g, WalkKind kind, double inv2delta,
               const std::vector<double>& in, std::vector<double>& out) {
  const std::uint32_t n = g.num_nodes;
  out.assign(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const double mass = in[v];
    if (mass == 0.0) continue;
    const std::uint32_t deg = g.degree(v);
    if (deg == 0) {
      out[v] += mass;
      continue;
    }
    if (kind == WalkKind::kLazy) {
      out[v] += 0.5 * mass;
      const double share = 0.5 * mass / deg;
      for (std::uint32_t p = 0; p < deg; ++p) out[g.neighbor(v, p)] += share;
    } else {
      const double move = mass * inv2delta;
      out[v] += mass - move * deg;
      for (std::uint32_t p = 0; p < deg; ++p) out[g.neighbor(v, p)] += move;
    }
  }
}

/// Nodes reachable from src (the walk's support; overlays above level 0 are
/// disjoint unions of per-part graphs, so mixing is per component).
std::vector<std::uint32_t> reachable(const CommView& g, std::uint32_t src) {
  std::vector<bool> seen(g.num_nodes, false);
  std::vector<std::uint32_t> stack{src}, out;
  seen[src] = true;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    out.push_back(v);
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const std::uint32_t w = g.neighbor(v, p);
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return out;
}

std::uint32_t comm_mixing_time_from_view(const CommView& g, WalkKind kind,
                                         std::uint32_t src,
                                         std::uint32_t max_t) {
  const std::uint32_t n = g.num_nodes;
  AMIX_CHECK(src < n);
  AMIX_CHECK(g.degree(src) > 0);

  const auto comp = reachable(g, src);

  // Stationary restricted to the component: lazy ~ degree-proportional,
  // 2Delta-regular ~ uniform (Definitions 2.1 / 2.2 on the component).
  std::uint64_t vol = 0;
  for (const std::uint32_t v : comp) vol += g.degree(v);
  std::vector<double> pi(n, 0.0);
  for (const std::uint32_t v : comp) {
    pi[v] = kind == WalkKind::kLazy
                ? static_cast<double>(g.degree(v)) / static_cast<double>(vol)
                : 1.0 / static_cast<double>(comp.size());
  }

  const double inv2delta = 1.0 / (2.0 * std::max(1u, g.max_degree));
  const double inv_n = 1.0 / static_cast<double>(comp.size());
  std::vector<double> p(n, 0.0), q;
  p[src] = 1.0;
  for (std::uint32_t t = 0; t <= max_t; ++t) {
    bool ok = true;
    for (const std::uint32_t v : comp) {
      if (std::abs(p[v] - pi[v]) > pi[v] * inv_n) {
        ok = false;
        break;
      }
    }
    if (ok) return t;
    comm_step(g, kind, inv2delta, p, q);
    p.swap(q);
  }
  return max_t + 1;
}

}  // namespace

std::uint32_t comm_mixing_time_from_start(const CommGraph& g, WalkKind kind,
                                          std::uint32_t src,
                                          std::uint32_t max_t) {
  return comm_mixing_time_from_view(g.view(), kind, src, max_t);
}

std::uint32_t comm_mixing_time_sampled(const CommGraph& g, WalkKind kind,
                                       std::uint32_t samples, Rng& rng,
                                       std::uint32_t max_t) {
  const CommView cv = g.view();
  bool any_live = false;
  for (std::uint32_t v = 0; v < cv.num_nodes; ++v) {
    if (cv.degree(v) > 0) {
      any_live = true;
      break;
    }
  }
  if (!any_live) return 0;  // edgeless overlay: nothing to mix
  std::uint32_t worst = 0;
  for (std::uint32_t i = 0; i < samples; ++i) {
    std::uint32_t src;
    do {
      src = static_cast<std::uint32_t>(rng.next_below(cv.num_nodes));
    } while (cv.degree(src) == 0);
    worst = std::max(worst, comm_mixing_time_from_view(cv, kind, src, max_t));
  }
  return worst;
}

}  // namespace amix
