#pragma once

// In-band distributed mixing-time estimation.
//
// The paper's algorithms take tau_mix(G) as a known parameter. This module
// closes that gap with a doubling protocol the nodes can actually run:
//
//   for T = T0, 2*T0, 4*T0, ...:
//     run `trials` independent batches of anonymous counting walks
//     (k tokens per arc slot) for T steps — T rounds per batch;
//     each node checks its token count against the stationary expectation
//     k * d(v) with relative tolerance `delta`;
//     a convergecast over a BFS tree ORs the violations; the leader
//     broadcasts continue/stop (height + 1 rounds each way).
//
// The estimate is the smallest probed T whose batches all look stationary.
// It converges to the *token-count* mixing scale: a constant-factor proxy
// for Definition 2.1's tau_mix (tests check the ratio), obtained in
// O(tau_mix * trials + D * log tau_mix) rounds — no global knowledge used.

#include <cstdint>

#include "congest/round_ledger.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace amix {

struct TauEstimatorParams {
  std::uint32_t tokens_per_slot = 32;  // k: tokens per (node, port)
  std::uint32_t trials = 3;            // batches per probed T
  double delta = 0.25;                 // per-node relative tolerance
  double violator_fraction = 0.02;     // tolerated fraction of nodes outside
  std::uint32_t t0 = 2;                // first probed T
  std::uint32_t max_t = 1u << 22;
};

struct TauEstimate {
  std::uint32_t tau = 0;        // smallest accepted T
  std::uint32_t probes = 0;     // doubling steps executed
  std::uint64_t rounds = 0;     // total charged rounds
};

/// Estimate the lazy-walk mixing scale of a connected graph, distributedly
/// (anonymous walks + BFS-tree coordination), charging every round.
TauEstimate estimate_tau_distributed(const Graph& g,
                                     const TauEstimatorParams& params,
                                     Rng& rng, RoundLedger& ledger);

}  // namespace amix
