#include "randwalk/tau_estimator.hpp"

#include <cmath>

#include "congest/primitives.hpp"
#include "randwalk/anonymous.hpp"

namespace amix {

TauEstimate estimate_tau_distributed(const Graph& g,
                                     const TauEstimatorParams& params,
                                     Rng& rng, RoundLedger& ledger) {
  AMIX_CHECK(g.num_nodes() >= 2);
  AMIX_CHECK(params.tokens_per_slot >= 1);
  const std::uint64_t rounds_at_entry = ledger.total();
  TauEstimate out;

  // Coordination backbone (one-time): leader + BFS tree; the leader then
  // learns the total degree 2m by a sum-convergecast and broadcasts it, so
  // every node knows its stationary expectation k * d(v).
  const NodeId leader = congest::elect_leader_max_id(g, ledger);
  const BfsTree tree = congest::distributed_bfs_tree(g, leader, ledger);
  ledger.charge(2ULL * (tree.height + 1));  // degree-sum up, 2m down

  BaseComm base(g);
  const std::uint64_t k = params.tokens_per_slot;
  const std::uint64_t total_tokens = k * g.num_arcs();

  for (std::uint32_t T = params.t0;; T *= 2) {
    AMIX_CHECK_MSG(T <= params.max_t, "tau estimator exceeded max_t");
    ++out.probes;

    std::uint32_t violating = 0;
    for (std::uint32_t trial = 0; trial < params.trials; ++trial) {
      // Definition 2.1's single-source form: everything starts at the
      // leader (the one node that can decide this locally).
      std::vector<std::uint64_t> counts(g.num_nodes(), 0);
      counts[leader] = total_tokens;
      AnonymousWalks walks(base, std::move(counts));
      walks.run(WalkKind::kLazy, T, rng, ledger);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const double expect = static_cast<double>(k) * g.degree(v);
        const double got = static_cast<double>(walks.counts()[v]);
        // Tolerance = relative band + 3-sigma sampling noise at
        // stationarity, so large stationary counts don't false-positive.
        const double tol = params.delta * expect + 3.0 * std::sqrt(expect);
        if (std::abs(got - expect) > tol) ++violating;
      }
    }

    // Violation flag up the tree, verdict down: (height + 1) each way.
    ledger.charge(2ULL * (tree.height + 1));

    const double frac = static_cast<double>(violating) /
                        (static_cast<double>(g.num_nodes()) * params.trials);
    if (frac <= params.violator_fraction) {
      out.tau = T;
      break;
    }
  }
  out.rounds = ledger.total() - rounds_at_entry;
  return out;
}

}  // namespace amix
