#pragma once

// Lightweight runtime-check macros used throughout the library.
//
// AMIX_CHECK is always on (benches rely on the Las-Vegas retry logic it
// guards); AMIX_DCHECK compiles out in NDEBUG builds and is meant for
// hot-loop invariants.

#include <cstdio>
#include <cstdlib>

namespace amix::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "AMIX_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace amix::detail

#define AMIX_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::amix::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                 \
  } while (false)

#define AMIX_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::amix::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define AMIX_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define AMIX_DCHECK(expr) AMIX_CHECK(expr)
#endif
