#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace amix {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AMIX_CHECK(!headers_.empty());
}

Table& Table::row() {
  if (!rows_.empty()) {
    AMIX_CHECK_MSG(rows_.back().size() == headers_.size(),
                   "previous row not fully populated");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  AMIX_CHECK_MSG(!rows_.empty(), "call row() before add()");
  AMIX_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_report(std::ostream& os, const std::string& title) const {
  os << "\n== " << title << " ==\n";
  print(os);
  os << "-- csv: " << title << " --\n";
  print_csv(os);
}

}  // namespace amix
