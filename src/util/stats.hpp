#pragma once

// Small summary-statistics helpers used by tests and benches.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace amix {

/// Streaming summary: count / min / max / mean / variance (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Exact quantile of a sample (copies and sorts; fine for bench sizes).
double quantile(std::vector<double> xs, double q);

/// Least-squares slope of log(y) against log(x): the empirical scaling
/// exponent used by the benches ("rounds grow like n^slope").
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace amix
