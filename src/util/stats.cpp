#include "util/stats.hpp"

#include <limits>

#include "util/check.hpp"

namespace amix {

double quantile(std::vector<double> xs, double q) {
  AMIX_CHECK(!xs.empty());
  AMIX_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double loglog_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  AMIX_CHECK(x.size() == y.size());
  AMIX_CHECK(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    AMIX_CHECK(x[i] > 0 && y[i] > 0);
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  AMIX_CHECK(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace amix
