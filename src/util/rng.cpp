#include "util/rng.hpp"

#include <unordered_set>

#include "util/check.hpp"

namespace amix {

std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t k,
                                           Rng& rng) {
  AMIX_CHECK(k <= n);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (static_cast<std::uint64_t>(k) * 4 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t j =
          i + static_cast<std::uint32_t>(rng.next_below(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.next_below(j + 1));
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace amix
