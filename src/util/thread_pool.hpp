#pragma once

// Deterministic fork/join parallelism for the simulation substrate.
//
// The substrate's hot loops (SyncNetwork::step handler sweeps,
// ParallelWalkEngine steps, TokenTransport accumulation) are
// embarrassingly parallel per round: each node reads only its inbox and
// writes only its outbox, each walk only its own position. What makes
// naive parallelization nondeterministic is *scheduling* — which thread
// processes which item, and in what order results are folded together.
//
// This header pins both down:
//
//   * ExecPolicy names the requested shard count. Shard s of n items is
//     ALWAYS the contiguous range [s*ceil(n/S), (s+1)*ceil(n/S)) — static
//     range sharding, no work stealing — so the item→shard mapping is a
//     pure function of (n, S), never of thread timing.
//   * ThreadPool::run_shards executes shard bodies on a persistent worker
//     pool. Which OS thread runs shard s is arbitrary (workers pull shard
//     indices from an atomic counter), but that is invisible to results:
//     shards touch disjoint state, and every consumer merges shard
//     results serially in increasing shard order after the join.
//
// Consumers guarantee bit-identical output for ANY shard count (1, 2, 8,
// ...) by making per-item work order-free (counter-keyed RNG, disjoint
// writes) and merges order-fixed. See DESIGN.md Section 8.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace amix {

/// How much parallelism a substrate component may use. The default (one
/// thread) is the serial path; results are bit-identical at any setting.
struct ExecPolicy {
  /// 1 = serial (default); 0 = one shard per hardware thread; k = k shards.
  std::uint32_t num_threads = 1;

  bool parallel() const { return num_threads != 1; }

  /// The resolved shard count (num_threads, with 0 mapped to the
  /// machine's hardware concurrency).
  std::uint32_t shards() const;
};

/// Persistent fork/join worker pool. One global instance serves the whole
/// process (workers are started lazily on first parallel use); the
/// calling thread always participates, so `ThreadPool::global()` with W
/// workers runs up to W+1 shards concurrently.
class ThreadPool {
 public:
  explicit ThreadPool(std::uint32_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t num_workers() const;

  /// Run body(0), ..., body(num_shards - 1), distributed over the workers
  /// and the calling thread; returns after ALL shards finished (a full
  /// barrier). Shard bodies must not throw and must touch disjoint state.
  void run_shards(std::uint32_t num_shards,
                  const std::function<void(std::uint32_t)>& body);

  /// The process-wide pool (hardware_concurrency - 1 workers, capped).
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

/// The [begin, end) range of shard s when [0, n) is cut into S shards.
inline std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                       std::uint32_t num_shards,
                                                       std::uint32_t s) {
  AMIX_DCHECK(num_shards > 0 && s < num_shards);
  const std::size_t chunk = (n + num_shards - 1) / num_shards;
  const std::size_t begin = std::min(n, s * chunk);
  return {begin, std::min(n, begin + chunk)};
}

/// Weight-balanced shard boundaries over a CSR-style prefix-sum array:
/// cuts [0, n) into `num_shards` contiguous ranges so each carries ~equal
/// total weight, where item i's weight is offsets[i+1] - offsets[i] (a
/// graph's offsets array fits directly, making the per-shard work
/// proportional to arcs rather than nodes — the cache-aware cut for
/// degree-skewed instances). Returns num_shards + 1 cut points with
/// bounds[0] == 0 and bounds[num_shards] == n; shards may be empty.
/// A pure function of (offsets, num_shards) — never of thread timing —
/// so consumers whose merges are boundary-independent (disjoint writes,
/// sums-then-max folds) stay bit-identical at any shard count.
template <typename Offset>
std::vector<std::size_t> weighted_shard_bounds(const Offset* offsets,
                                               std::size_t n,
                                               std::uint32_t num_shards) {
  AMIX_DCHECK(num_shards > 0);
  std::vector<std::size_t> bounds(num_shards + 1, n);
  bounds[0] = 0;
  if (n == 0) return bounds;
  const std::uint64_t total = static_cast<std::uint64_t>(offsets[n]) -
                              static_cast<std::uint64_t>(offsets[0]);
  for (std::uint32_t s = 1; s < num_shards; ++s) {
    // First index whose prefix weight reaches s/num_shards of the total;
    // clamped monotone so ranges stay disjoint and ordered.
    const std::uint64_t target =
        static_cast<std::uint64_t>(offsets[0]) + total * s / num_shards;
    const Offset* cut = std::lower_bound(
        offsets + bounds[s - 1], offsets + n, target,
        [](const Offset& o, std::uint64_t t) {
          return static_cast<std::uint64_t>(o) < t;
        });
    bounds[s] = static_cast<std::size_t>(cut - offsets);
  }
  return bounds;
}

/// parallel_for_shards over precomputed cut points (e.g. from
/// weighted_shard_bounds): invokes body(s, bounds[s], bounds[s+1]) for
/// each shard. Serial policies run inline in shard order; parallel
/// policies dispatch through ThreadPool::global(). The shard→range
/// mapping is identical either way.
template <typename Body>
void parallel_for_bounds(const ExecPolicy& exec,
                         std::span<const std::size_t> bounds,
                         const Body& body) {
  const std::uint32_t num_shards = static_cast<std::uint32_t>(bounds.size() - 1);
  if (!exec.parallel() || bounds.back() <= 1) {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      body(s, bounds[s], bounds[s + 1]);
    }
    return;
  }
  ThreadPool::global().run_shards(num_shards, [&](std::uint32_t s) {
    body(s, bounds[s], bounds[s + 1]);
  });
}

/// Static range sharding of [0, n): invokes
/// body(shard, begin, end) for each of exec.shards() contiguous shards.
/// Serial policies (and tiny n) run inline on the caller, in shard order;
/// parallel policies dispatch through ThreadPool::global(). The
/// shard→range mapping is identical either way.
///
/// A template on the callable, deliberately: the serial path is the inner
/// loop of every substrate sweep, and erasing the body behind a
/// std::function would make each sweep an opaque indirect call — the
/// optimizer could no longer keep the caller's locals (CSR base pointers,
/// walk positions) in registers across it. Only the parallel dispatch
/// pays the type-erasure toll, where it is amortized over a whole shard.
///
/// Caveat for peak-throughput bodies: capture the body's state BY VALUE
/// (e.g. a small context struct of pointers). A by-reference closure has
/// its address escape into the parallel dispatch below, which forces the
/// optimizer to re-load the captured pointers from the closure inside the
/// body's loop even on the serial path. See walk_engine.cpp's SweepCtx.
template <typename Body>
void parallel_for_shards(const ExecPolicy& exec, std::size_t n,
                         const Body& body) {
  const std::uint32_t num_shards = exec.shards();
  if (!exec.parallel() || n <= 1) {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const auto [begin, end] = shard_range(n, num_shards, s);
      body(s, begin, end);
    }
    return;
  }
  ThreadPool::global().run_shards(num_shards, [&](std::uint32_t s) {
    const auto [begin, end] = shard_range(n, num_shards, s);
    body(s, begin, end);
  });
}

}  // namespace amix
