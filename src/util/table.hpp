#pragma once

// Fixed-width table printer used by the bench binaries so every experiment
// emits both a human-readable table and a machine-readable CSV block.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace amix {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(std::uint64_t v);
  Table& add(std::int64_t v);
  Table& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Table& add(unsigned v) { return add(static_cast<std::uint64_t>(v)); }
  Table& add(double v, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }

  /// Pretty fixed-width rendering.
  void print(std::ostream& os) const;
  /// CSV rendering (headers + rows).
  void print_csv(std::ostream& os) const;
  /// Both, with a title banner — the standard bench output format.
  void print_report(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amix
