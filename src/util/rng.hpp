#pragma once

// Deterministic, fast pseudo-random number generation.
//
// The whole library is seeded explicitly so that every experiment is
// reproducible: a single 64-bit seed fans out (via SplitMix64) into
// independent streams for each subsystem.

#include <cstdint>
#include <limits>
#include <vector>

namespace amix {

/// SplitMix64: used for seeding and for cheap stateless hashing of
/// 64-bit keys. Passes BigCrush when used as a generator.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: the library's workhorse generator.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Derive an independent stream (e.g. per subsystem or per walk batch).
  Rng split() { return Rng(splitmix64((*this)()) ^ 0x2545f4914f6cdd1dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

// ---------------------------------------------------------------------------
// Counter-based (keyed) generation: randomness as a pure function of
// (seed, stream, counter), in the spirit of Philox/Threefry counter RNGs
// but built from SplitMix64 rounds. Unlike a sequential generator, a
// keyed draw does not depend on how many draws happened before it — so a
// loop over (stream, counter) pairs produces the same values no matter
// how its iterations are sharded across threads. This is what keeps
// parallel walk trajectories bit-identical to serial ones: walk i's step
// t draws keyed_below(run_key, i, t, bound) wherever it executes.
// ---------------------------------------------------------------------------

/// Uniform 64-bit word keyed on (seed, stream, counter): three chained
/// SplitMix64 rounds (each round is a bijective avalanche mix; SplitMix64
/// itself passes BigCrush).
constexpr std::uint64_t keyed_u64(std::uint64_t seed, std::uint64_t stream,
                                  std::uint64_t counter) {
  std::uint64_t x = splitmix64(seed ^ 0x6a09e667f3bcc909ULL);
  x = splitmix64(x ^ stream);
  return splitmix64(x ^ counter);
}

/// Uniform integer in [0, bound) keyed on (seed, stream, counter).
/// Lemire's method with exact rejection; rejected words continue the
/// SplitMix64 chain, so the result stays a pure function of the key.
inline std::uint64_t keyed_below(std::uint64_t seed, std::uint64_t stream,
                                 std::uint64_t counter, std::uint64_t bound) {
  if (bound <= 1) return 0;
  std::uint64_t x = keyed_u64(seed, stream, counter);
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = splitmix64(x);
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform double in [0, 1) keyed on (seed, stream, counter).
inline double keyed_double(std::uint64_t seed, std::uint64_t stream,
                           std::uint64_t counter) {
  return static_cast<double>(keyed_u64(seed, stream, counter) >> 11) *
         0x1.0p-53;
}

/// Fisher-Yates shuffle of a vector (uses Rng rather than std::shuffle so
/// results are identical across standard-library implementations).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Sample `k` distinct values from [0, n) (k <= n). O(k) expected time via
/// Floyd's algorithm for small k, falling back to a shuffle prefix.
std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t k,
                                           Rng& rng);

}  // namespace amix
