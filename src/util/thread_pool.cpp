#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace amix {

std::uint32_t ExecPolicy::shards() const {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : static_cast<std::uint32_t>(hw);
}

namespace {

/// One fork/join dispatch. Workers pull shard indices from `next`; the
/// shard→range mapping is static, so which worker runs a shard never
/// affects results. The object is shared_ptr-held by every participant,
/// which makes a lagging worker that wakes after the join harmless: it
/// sees `next >= num_shards` and touches nothing else.
struct Job {
  const std::function<void(std::uint32_t)>* body = nullptr;
  std::uint32_t num_shards = 0;
  std::atomic<std::uint32_t> next{0};
  std::atomic<std::uint32_t> done{0};
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Job> job;  // guarded by mu; non-null while a job runs
  std::uint64_t generation = 0;
  bool stop = false;
  std::vector<std::thread> workers;

  static void drain(Job& job) {
    for (;;) {
      const std::uint32_t s = job.next.fetch_add(1, std::memory_order_relaxed);
      if (s >= job.num_shards) return;
      (*job.body)(s);
      job.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lk(mu);
        work_cv.wait(lk, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        j = job;
      }
      if (j == nullptr) continue;
      drain(*j);
      {
        std::lock_guard<std::mutex> lk(mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::uint32_t num_workers) : impl_(new Impl) {
  impl_->workers.reserve(num_workers);
  for (std::uint32_t i = 0; i < num_workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
    impl_->work_cv.notify_all();
  }
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

std::uint32_t ThreadPool::num_workers() const {
  return static_cast<std::uint32_t>(impl_->workers.size());
}

void ThreadPool::run_shards(std::uint32_t num_shards,
                            const std::function<void(std::uint32_t)>& body) {
  if (num_shards == 0) return;
  if (num_shards == 1 || impl_->workers.empty()) {
    for (std::uint32_t s = 0; s < num_shards; ++s) body(s);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->num_shards = num_shards;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job = job;
    ++impl_->generation;
    impl_->work_cv.notify_all();
  }
  // The caller is a participant too — it never just blocks on the join.
  Impl::drain(*job);
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) == job->num_shards;
    });
    impl_->job = nullptr;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    // Workers beyond the shard counts anyone asks for just idle on the
    // condition variable; still, cap the global pool at a sane size.
    const unsigned workers = hw == 0 ? 1 : hw - 1;
    return static_cast<std::uint32_t>(std::min(workers, 31u));
  }());
  return pool;
}

}  // namespace amix
