#pragma once

// W-wise independent hash family over the Mersenne prime p = 2^61 - 1.
//
// Section 3.1.2 of the paper partitions the virtual nodes with a
// Theta(log n)-wise independent hash function whose O(log^2 n) random bits
// are broadcast from a leader. A random degree-(W-1) polynomial over a prime
// field is the textbook construction [Alon-Spencer]: evaluating it at a key
// gives a W-wise independent value in [0, p), which we then reduce to the
// desired range.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace amix {

class KWiseHash {
 public:
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  /// A random member of the W-wise independent family. `W >= 1`.
  KWiseHash(unsigned W, Rng& rng);

  /// Hash of a 64-bit key, uniform in [0, kPrime).
  std::uint64_t operator()(std::uint64_t key) const;

  /// Hash reduced to [0, range). Bias is O(range / 2^61), negligible for the
  /// ranges used here (at most m^O(1)).
  std::uint64_t bounded(std::uint64_t key, std::uint64_t range) const {
    return (*this)(key) % range;
  }

  unsigned independence() const {
    return static_cast<unsigned>(coeffs_.size());
  }

  /// Number of random bits the construction consumes: W coefficients of
  /// 61 bits each — the Theta(W log n) bits the paper's leader broadcasts.
  std::size_t seed_bits() const { return coeffs_.size() * 61; }

 private:
  std::vector<std::uint64_t> coeffs_;  // degree W-1 polynomial, c[0] + c[1] x + ...
};

/// Multiplication mod 2^61 - 1 without overflow.
std::uint64_t mulmod_m61(std::uint64_t a, std::uint64_t b);

/// Reduction mod 2^61 - 1 of a value < 2^62.
constexpr std::uint64_t reduce_m61(std::uint64_t x) {
  constexpr std::uint64_t p = (1ULL << 61) - 1;
  x = (x & p) + (x >> 61);
  return x >= p ? x - p : x;
}

}  // namespace amix
