#include "util/kwise_hash.hpp"

#include "util/check.hpp"

namespace amix {

std::uint64_t mulmod_m61(std::uint64_t a, std::uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  const auto lo = static_cast<std::uint64_t>(prod & KWiseHash::kPrime);
  const auto hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce_m61(lo + hi);
}

KWiseHash::KWiseHash(unsigned W, Rng& rng) {
  AMIX_CHECK(W >= 1);
  coeffs_.resize(W);
  for (auto& c : coeffs_) {
    // Rejection-sample a uniform value in [0, p).
    do {
      c = rng() & ((1ULL << 61) - 1);
    } while (c >= kPrime);
  }
}

std::uint64_t KWiseHash::operator()(std::uint64_t key) const {
  // Keys can be arbitrary 64-bit values; fold into the field first.
  const std::uint64_t x = reduce_m61(reduce_m61(key) + 1);  // avoid x == 0
  // Horner evaluation, highest coefficient first.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = reduce_m61(mulmod_m61(acc, x) + coeffs_[i]);
  }
  return acc;
}

}  // namespace amix
