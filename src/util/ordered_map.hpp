#pragma once

// OrderedMap: a string-keyed map with deterministic (insertion-order)
// iteration and O(1) average lookup.
//
// The repo's observability surfaces — RoundLedger phase breakdowns,
// obs::MetricsRegistry counters/gauges/histograms — all need the same two
// properties: exports must be byte-identical across runs and thread counts
// (so iteration order must be a pure function of the recorded event
// sequence, never of hashing or addresses), and lookups happen on paths
// hot enough that the previous linear scan over a vector<pair> was
// starting to show up (RoundLedger::charge with a phase tag runs once per
// committed step). Items live in an insertion-ordered vector — the vector
// IS the iteration order — and an unordered index maps key -> slot for
// lookup only.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace amix {

template <typename V>
class OrderedMap {
 public:
  using Item = std::pair<std::string, V>;

  /// Value slot for `key`, inserting a default-constructed value (at the
  /// end of the iteration order) on first use.
  V& at_or_insert(std::string_view key) {
    if (const auto it = index_.find(key); it != index_.end()) {
      return items_[it->second].second;
    }
    items_.emplace_back(std::string(key), V{});
    // The index owns its key copy: item strings move when the vector
    // grows (and short keys live in SSO buffers), so views into them
    // would dangle. Lookups stay allocation-free via transparent hashing.
    index_.emplace(items_.back().first, items_.size() - 1);
    return items_.back().second;
  }

  /// Lookup without insertion; nullptr when absent.
  const V* find(std::string_view key) const {
    const auto it = index_.find(key);
    return it != index_.end() ? &items_[it->second].second : nullptr;
  }

  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Insertion-ordered items; the canonical iteration surface.
  const std::vector<Item>& items() const { return items_; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const Item& operator[](std::size_t i) const { return items_[i]; }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  void clear() {
    items_.clear();
    index_.clear();
  }

  /// Equality is over the ordered items — two maps built by different
  /// insertion sequences compare unequal, which is exactly what the
  /// determinism diffs want.
  friend bool operator==(const OrderedMap& a, const OrderedMap& b) {
    return a.items_ == b.items_;
  }

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<Item> items_;
  std::unordered_map<std::string, std::size_t, SvHash, SvEq> index_;
};

}  // namespace amix
