// E4 — Theorem 1.3 corollary: clique emulation on G(n,p) in O~(1/p + log n)
// phases of routing, against the Omega(n / h(G)) cut lower bound.
//
// Fixed n, sweep p above the connectivity threshold: the phase count must
// track 1/p (each node has Theta(np) ports and n-1 messages), and rounds
// divided by the n/h(G) lower bound must stay within a slowly-varying
// (subpolynomial) envelope.

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E4 bench_clique_emulation",
                "Theorem 1.3: all-to-all on G(n,p); phases ~ 1/p");

  const NodeId n = bench::large_mode() ? 256 : 128;
  const std::vector<double> ps = {0.08, 0.12, 0.2, 0.35, 0.6};

  Table t({"n", "p", "1/p", "h(G)~", "n/h (lower bnd)", "phases",
           "phases*p", "rounds", "rounds/(n/h)"});

  std::vector<double> inv_p, phases_series;
  for (const double p : ps) {
    Rng rng(bench::bench_seed() * 97 + static_cast<std::uint64_t>(p * 1000));
    const Graph g = gen::connected_gnp(n, p, rng);
    const double h_est = edge_expansion_sweep(g);

    RoundLedger build;
    HierarchyParams hp;
    hp.seed = bench::bench_seed() + static_cast<std::uint64_t>(p * 100);
    const Hierarchy hier = Hierarchy::build(g, hp, build);
    const CliqueEmulator emu(hier);
    RoundLedger ledger;
    const auto stats = emu.emulate_round(ledger, rng, h_est);

    inv_p.push_back(1.0 / p);
    phases_series.push_back(stats.phases);

    t.row()
        .add(std::uint64_t{n})
        .add(p, 2)
        .add(1.0 / p, 1)
        .add(h_est, 2)
        .add(stats.lower_bound, 1)
        .add(std::uint64_t{stats.phases})
        .add(stats.phases * p, 2)
        .add(stats.rounds)
        .add(static_cast<double>(stats.rounds) / stats.lower_bound, 1);
  }
  t.print_report(std::cout, "E4.clique");

  Table shape({"metric", "value", "expectation"});
  shape.row()
      .add("loglog_slope(phases vs 1/p)")
      .add(loglog_slope(inv_p, phases_series), 3)
      .add("~1.0 (phases proportional to 1/p)");
  shape.print_report(std::cout, "E4.shape");
  return 0;
}
