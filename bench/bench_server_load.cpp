// amixd under closed-loop load (google-benchmark): N concurrent client
// connections, each issuing query requests back-to-back against one
// live daemon on loopback. After the first request the hierarchy is
// cached, so the steady state this measures is the server's cache-HIT
// path end to end: socket framing, header parse, admission, the shared
// cache's lock-free lookup, execute_query/fold_batch, response write.
//
//   BM_ServerQueryLoad/<clients>  — closed loop, requests/sec in
//                                   items_per_second, request latency
//                                   percentiles in p50_us / p99_us.
//
// Manual timing: one benchmark iteration = every client completes a
// fixed burst of requests; the measured time is the wall-clock of the
// whole fan-out (IO wait included — that's the product being measured,
// so the perf guard gates these rows on real_time, not cpu_time).
// Latencies are recorded per request across ALL iterations and the
// percentiles attached as counters at the end.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amix/amix.hpp"
#include "bench_common.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace {

using namespace amix;

constexpr int kRequestsPerClientPerIter = 8;

// Cheap specs: the hierarchy is cached and walks are a few simulated
// rounds, so the row measures server overhead, not algorithm runtime.
const std::vector<std::string> kLoadMix = {"walks 16 8"};

void BM_ServerQueryLoad(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));

  server::ServerOptions opt;
  // A worker owns its connection for the connection's lifetime (see
  // server.hpp), so a closed loop over N persistent connections needs N
  // workers — fewer would measure idle-timeout head-of-line blocking,
  // not the serving path.
  opt.workers = static_cast<std::size_t>(clients);
  opt.queue_capacity = 64;
  opt.tenant_inflight = 0;  // measure throughput, not admission control
  opt.hierarchy.seed = bench::bench_seed();
  server::Server srv(opt);
  {
    Rng rng(17);
    srv.register_graph("g0", gen::random_regular(96, 6, rng));
  }
  std::string err;
  if (!srv.start(&err)) {
    state.SkipWithError(("server start: " + err).c_str());
    return;
  }

  server::RequestHeader hdr;
  hdr.verb = server::Verb::kQuery;
  hdr.graph = "g0";
  hdr.seed = bench::bench_seed();
  hdr.base = 0;

  // Warm the cache so every measured request is a hit.
  {
    server::Client c;
    server::ResponseHeader resp;
    std::string body;
    if (!c.connect_to(srv.port(), &err) ||
        !c.request(hdr, kLoadMix, &resp, &body, &err) || !resp.ok) {
      state.SkipWithError("warmup request failed");
      return;
    }
  }

  // One long-lived connection per client, reused across iterations —
  // the daemon's intended usage (amixctl client does the same).
  std::vector<server::Client> conns(static_cast<std::size_t>(clients));
  for (auto& c : conns) {
    if (!c.connect_to(srv.port(), &err)) {
      state.SkipWithError(("connect: " + err).c_str());
      return;
    }
  }

  std::mutex mu;
  std::vector<double> latencies_us;  // every request, all iterations
  std::atomic<bool> failed{false};

  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < clients; ++t) {
      pool.emplace_back([&, t] {
        std::vector<double> local;
        local.reserve(kRequestsPerClientPerIter);
        for (int r = 0; r < kRequestsPerClientPerIter; ++r) {
          server::ResponseHeader resp;
          std::string body, rerr;
          const auto q0 = std::chrono::steady_clock::now();
          if (!conns[static_cast<std::size_t>(t)].request(hdr, kLoadMix, &resp,
                                                          &body, &rerr) ||
              !resp.ok) {
            failed = true;
            return;
          }
          const auto q1 = std::chrono::steady_clock::now();
          local.push_back(
              std::chrono::duration<double, std::micro>(q1 - q0).count());
        }
        const std::lock_guard lock(mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : pool) t.join();
    const auto t1 = std::chrono::steady_clock::now();
    if (failed) {
      state.SkipWithError("request failed under load");
      return;
    }
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
  }

  state.SetItemsProcessed(state.iterations() * clients *
                          kRequestsPerClientPerIter);
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(latencies_us.size() - 1));
      return latencies_us[idx];
    };
    state.counters["p50_us"] = pct(0.50);
    state.counters["p99_us"] = pct(0.99);
  }
  state.counters["clients"] = clients;
  const server::SharedHierarchyCache::Stats cs = srv.cache().stats();
  state.counters["cache_hit_rate"] =
      cs.hits + cs.misses == 0
          ? 0.0
          : static_cast<double>(cs.hits) /
                static_cast<double>(cs.hits + cs.misses);
  bench::set_memory_counters(state);
  srv.shutdown();
}

BENCHMARK(BM_ServerQueryLoad)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
