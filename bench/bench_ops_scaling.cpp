// Scaling of the Ghaffari-Li transformation ops (google-benchmark):
// matching, min cut, and SSSP as a function of n on 6-regular expanders.
//
//   BM_MatchingQuery/n  Israeli-Itai proposal phases to maximality, incl.
//                       the per-phase termination convergecasts.
//   BM_SsspQuery/n      Bellman-Ford to the quiet round (exact, certified).
//   BM_MincutQuery/n    tree packing over a prebuilt hierarchy (the
//                       hierarchy build is hoisted out of the loop — the
//                       row measures the op, which is what a warm Session
//                       pays per query).
//
// items processed = nodes, so items/sec is the per-node throughput the
// round complexity predicts to be ~n/polylog(n). The `rounds` counter
// carries the charged CONGEST rounds of the final iteration so a bench
// run doubles as a scaling table for the round envelopes BoundChecker
// gates. tools/perf_guard.py compares these rows against
// BENCH_simulator.json like the other engine benches.

#include <benchmark/benchmark.h>

#include "amix/amix.hpp"
#include "bench_common.hpp"

namespace {

using namespace amix;

Graph ops_graph(std::int64_t n) {
  Rng rng(static_cast<std::uint64_t>(n) * 29 + 3);
  return gen::random_regular(static_cast<NodeId>(n), 6, rng);
}

void BM_MatchingQuery(benchmark::State& state) {
  const Graph g = ops_graph(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    const MatchingStats s = distributed_greedy_matching(g, 7, ledger);
    benchmark::DoNotOptimize(s.edges.size());
    rounds = s.rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.SetItemsProcessed(state.iterations() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_MatchingQuery)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_SsspQuery(benchmark::State& state) {
  const Graph g = ops_graph(state.range(0));
  Rng rng(11);
  const Weights w = distinct_random_weights(g, rng);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    const SsspStats s = distributed_sssp(g, w, 0, ledger);
    benchmark::DoNotOptimize(s.dist_sum);
    rounds = s.rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.SetItemsProcessed(state.iterations() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_SsspQuery)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_MincutQuery(benchmark::State& state) {
  const Graph g = ops_graph(state.range(0));
  RoundLedger build_ledger;
  HierarchyParams hp;
  hp.seed = 13;
  const Hierarchy h = Hierarchy::build(g, hp, build_ledger);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Rng rng(17);
    RoundLedger ledger;
    const MincutStats s = distributed_mincut_tree_packing(h, rng, ledger, 4);
    benchmark::DoNotOptimize(s.cut_value);
    rounds = s.rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.SetItemsProcessed(state.iterations() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_MincutQuery)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
