// Simulator wall-clock performance (google-benchmark): how fast the
// substrate itself runs on this machine. Not a paper experiment — it
// answers "can I afford larger sweeps?" (walk steps/sec, packets/sec,
// kernel rounds/sec).

#include <benchmark/benchmark.h>

#include "amix/amix.hpp"

namespace {

using namespace amix;

void BM_WalkEngineSteps(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(1024, 8, rng);
  BaseComm base(g);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 0; i < 8; ++i) starts.push_back(v);
  }
  for (auto _ : state) {
    ParallelWalkEngine engine(base, rng.split());
    RoundLedger ledger;
    engine.run(starts, WalkKind::kLazy,
               static_cast<std::uint32_t>(state.range(0)), ledger, nullptr);
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * starts.size() * state.range(0));
}
BENCHMARK(BM_WalkEngineSteps)->Arg(8)->Arg(32);

void BM_KernelRounds(benchmark::State& state) {
  Rng rng(9);
  const Graph g = gen::random_regular(512, 8, rng);
  for (auto _ : state) {
    RoundLedger ledger;
    congest::SyncNetwork net(g, ledger);
    net.run_rounds(
        [](NodeId, const congest::Inbox&, congest::Outbox& out) {
          out.send(0, congest::Message{1, 2});
        },
        static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes() *
                          state.range(0));
}
BENCHMARK(BM_KernelRounds)->Arg(16);

void BM_HierarchyBuild(benchmark::State& state) {
  Rng rng(11);
  const Graph g =
      gen::random_regular(static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 5;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    benchmark::DoNotOptimize(h.depth());
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RoutePermutation(benchmark::State& state) {
  Rng rng(13);
  const Graph g =
      gen::random_regular(static_cast<NodeId>(state.range(0)), 8, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 7;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  for (auto _ : state) {
    const auto reqs = permutation_instance(g, rng);
    RoundLedger ledger;
    const auto stats = router.route(reqs, ledger, rng);
    benchmark::DoNotOptimize(stats.total_rounds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoutePermutation)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_KruskalOracle(benchmark::State& state) {
  Rng rng(15);
  const Graph g =
      gen::random_regular(static_cast<NodeId>(state.range(0)), 8, rng);
  const Weights w = distinct_random_weights(g, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kruskal_mst(g, w).size());
  }
}
BENCHMARK(BM_KruskalOracle)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
