// Simulator wall-clock performance (google-benchmark): how fast the
// substrate itself runs on this machine. Not a paper experiment — it
// answers "can I afford larger sweeps?" (walk steps/sec, packets/sec,
// kernel rounds/sec).

#include <benchmark/benchmark.h>

#include "amix/amix.hpp"
#include "bench_common.hpp"

namespace {

using namespace amix;

void BM_WalkEngineSteps(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(1024, 8, rng);
  BaseComm base(g);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 0; i < 8; ++i) starts.push_back(v);
  }
  for (auto _ : state) {
    ParallelWalkEngine engine(base, rng.split());
    RoundLedger ledger;
    engine.run(starts, WalkKind::kLazy,
               static_cast<std::uint32_t>(state.range(0)), ledger, nullptr);
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * starts.size() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_WalkEngineSteps)->Arg(8)->Arg(32);

// Threaded variant: same workload shape at a size where the parallel
// sweep pays; range(1) is the ExecPolicy thread count, so the items/sec
// ratio of {32, 8} over {32, 1} is the executor speedup (the ISSUE 2
// acceptance bar is >= 2.5x at 8 threads). Fixed-seed engine: every
// thread count advances the exact same trajectories.
void BM_WalkEngineStepsThreaded(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::random_regular(4096, 8, rng);
  BaseComm base(g);
  std::vector<std::uint32_t> starts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 0; i < 8; ++i) starts.push_back(v);
  }
  const ExecPolicy exec{static_cast<std::uint32_t>(state.range(1))};
  for (auto _ : state) {
    ParallelWalkEngine engine(base, Rng(1234), exec);
    RoundLedger ledger;
    engine.run(starts, WalkKind::kLazy,
               static_cast<std::uint32_t>(state.range(0)), ledger, nullptr);
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * starts.size() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_WalkEngineStepsThreaded)
    ->ArgsProduct({{32}, {1, 2, 4, 8}});

// Sharded-commit cost in isolation: one parallel step of `range(0)` token
// moves, accumulated into range(1) shards and merged (shard count 0 =
// the serial move()/commit_step path for reference).
void BM_TokenTransportCommit(benchmark::State& state) {
  Rng rng(21);
  const Graph g = gen::random_regular(1024, 8, rng);
  BaseComm base(g);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next_below(g.num_nodes()));
    moves.emplace_back(v,
                       static_cast<std::uint32_t>(rng.next_below(g.degree(v))));
  }
  const auto num_shards = static_cast<std::uint32_t>(state.range(1));
  TokenTransport transport(base);
  auto shards = transport.make_shards(num_shards == 0 ? 1 : num_shards);
  for (auto _ : state) {
    RoundLedger ledger;
    if (num_shards == 0) {
      for (const auto& [v, p] : moves) transport.move(v, p);
      benchmark::DoNotOptimize(transport.commit_step(ledger));
    } else {
      for (auto& s : shards) s.begin_step(/*log_moves=*/false);
      for (std::size_t i = 0; i < moves.size(); ++i) {
        shards[i % num_shards].move(moves[i].first, moves[i].second);
      }
      benchmark::DoNotOptimize(transport.commit_step_shards(shards, ledger));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_TokenTransportCommit)
    ->ArgsProduct({{1 << 15}, {0, 1, 2, 8}});

// Kernel slot-sweep cost in isolation: rounds of mixed traffic (half the
// ports send, so present and absent inbox slots interleave) over the
// per-arc message arrays. This is the SyncNetwork memory-layout benchmark:
// its cost is dominated by the delivery sweep and slot bookkeeping, not
// the handler body.
void BM_SyncNetworkRound(benchmark::State& state) {
  Rng rng(23);
  const Graph g = gen::random_regular(2048, 8, rng);
  std::vector<std::uint64_t> acc(g.num_nodes(), 0);
  for (auto _ : state) {
    RoundLedger ledger;
    congest::SyncNetwork net(g, ledger);
    net.run_rounds(
        [&acc](NodeId v, const congest::Inbox& in, congest::Outbox& out) {
          if (!in.empty()) {
            for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
              if (in.at(p).has_value()) acc[v] += in.at(p)->a;
            }
          }
          for (std::uint32_t p = 0; p < out.num_ports(); p += 2) {
            out.send(p, congest::Message{acc[v] + p, v});
          }
        },
        static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes() *
                          state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_SyncNetworkRound)->Arg(32);

void BM_KernelRounds(benchmark::State& state) {
  Rng rng(9);
  const Graph g = gen::random_regular(512, 8, rng);
  for (auto _ : state) {
    RoundLedger ledger;
    congest::SyncNetwork net(g, ledger);
    net.run_rounds(
        [](NodeId, const congest::Inbox&, congest::Outbox& out) {
          out.send(0, congest::Message{1, 2});
        },
        static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes() *
                          state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_KernelRounds)->Arg(16);

// Threaded variant: handler sweep + receiver-side delivery over node
// shards; range(1) is the ExecPolicy thread count.
void BM_KernelRoundsThreaded(benchmark::State& state) {
  Rng rng(9);
  const Graph g = gen::random_regular(4096, 8, rng);
  const ExecPolicy exec{static_cast<std::uint32_t>(state.range(1))};
  std::vector<std::uint64_t> acc(g.num_nodes(), 0);
  for (auto _ : state) {
    RoundLedger ledger;
    congest::SyncNetwork net(g, ledger, exec);
    net.run_rounds(
        [&acc](NodeId v, const congest::Inbox& in, congest::Outbox& out) {
          if (!in.empty()) {
            for (std::uint32_t p = 0; p < in.num_ports(); ++p) {
              if (in.at(p).has_value()) acc[v] += in.at(p)->a;
            }
          }
          for (std::uint32_t p = 0; p < out.num_ports(); ++p) {
            out.send(p, congest::Message{acc[v] + p, v});
          }
        },
        static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(ledger.total());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes() *
                          state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_KernelRoundsThreaded)->ArgsProduct({{16}, {1, 2, 4, 8}});

void BM_HierarchyBuild(benchmark::State& state) {
  Rng rng(11);
  const Graph g =
      gen::random_regular(static_cast<NodeId>(state.range(0)), 8, rng);
  for (auto _ : state) {
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = 5;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    benchmark::DoNotOptimize(h.depth());
  }
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_HierarchyBuild)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RoutePermutation(benchmark::State& state) {
  Rng rng(13);
  const Graph g =
      gen::random_regular(static_cast<NodeId>(state.range(0)), 8, rng);
  RoundLedger build;
  HierarchyParams hp;
  hp.seed = 7;
  const Hierarchy h = Hierarchy::build(g, hp, build);
  HierarchicalRouter router(h);
  for (auto _ : state) {
    const auto reqs = permutation_instance(g, rng);
    RoundLedger ledger;
    const auto stats = router.route(reqs, ledger, rng);
    benchmark::DoNotOptimize(stats.total_rounds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_RoutePermutation)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_KruskalOracle(benchmark::State& state) {
  Rng rng(15);
  const Graph g =
      gen::random_regular(static_cast<NodeId>(state.range(0)), 8, rng);
  const Weights w = distinct_random_weights(g, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kruskal_mst(g, w).size());
  }
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_KruskalOracle)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
