// E5 — Lemma 2.3: tau_mix_bar <= 8 (Delta/h(G))^2 ln n for the
// 2Delta-regular walk, across the mixing spectrum.
//
// Families where h is known analytically or via the sweep estimate; the
// measured column is the exact Definition 2.1/2.2 mixing time (dense
// distribution evolution, max over sampled starts + extremal nodes).

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E5 bench_mixing_bounds",
                "Lemma 2.3: measured 2Delta-regular mixing vs Cheeger bound");

  struct Instance {
    std::string name;
    Graph g;
    double h;  // <= true h(G); 0 = use sweep estimate
  };
  Rng rng(bench::bench_seed() * 11 + 3);
  std::vector<Instance> instances;
  instances.push_back({"complete-64", gen::complete(64), 32.0});
  instances.push_back({"ring-64", gen::ring(64), 2.0 / 32.0});
  instances.push_back({"ring-128", gen::ring(128), 2.0 / 64.0});
  instances.push_back({"torus-64", gen::torus2d(8), 0.0});
  instances.push_back({"hypercube-64", gen::hypercube(6), 0.0});
  instances.push_back({"regular6-128", gen::random_regular(128, 6, rng), 0.0});
  instances.push_back({"gnp-128", bench::make_family("gnp", 128, rng), 0.0});
  instances.push_back({"barbell-64", gen::barbell(64), 1.0 / 32.0});

  Table t({"graph", "n", "Delta", "h(G)", "lemma2.3 bound", "measured",
           "bound/measured", "holds"});

  for (auto& [name, g, h] : instances) {
    if (h == 0.0) h = edge_expansion_sweep(g);
    const double bound = lemma23_bound(g, h);
    Rng probe = rng.split();
    const auto measured = mixing_time_sampled(
        g, WalkKind::kRegular2Delta, 6, probe,
        static_cast<std::uint32_t>(std::min(4.0 * bound + 1000, 4.0e8)));
    const bool holds = measured <= bound;
    t.row()
        .add(name)
        .add(std::uint64_t{g.num_nodes()})
        .add(std::uint64_t{g.max_degree()})
        .add(h, 4)
        .add(bound, 0)
        .add(std::uint64_t{measured})
        .add(bound / std::max<std::uint32_t>(measured, 1), 1)
        .add(holds ? "yes" : "NO");
    AMIX_CHECK_MSG(holds, "Lemma 2.3 violated");
  }
  t.print_report(std::cout, "E5.mixing");

  // Lazy-walk mixing across the spectrum (the tau_mix the theorems use).
  Table t2({"graph", "tau_mix(lazy)", "family class"});
  Rng probe2 = rng.split();
  t2.row()
      .add("regular6-128")
      .add(std::uint64_t{mixing_time_sampled(
          gen::random_regular(128, 6, rng), WalkKind::kLazy, 6, probe2,
          1u << 22)})
      .add("expander: polylog");
  t2.row()
      .add("torus-121")
      .add(std::uint64_t{mixing_time_sampled(gen::torus2d(11),
                                             WalkKind::kLazy, 6, probe2,
                                             1u << 22)})
      .add("torus: ~n");
  t2.row()
      .add("ring-128")
      .add(std::uint64_t{mixing_time_sampled(gen::ring(128), WalkKind::kLazy,
                                             6, probe2, 1u << 24)})
      .add("ring: ~n^2");
  t2.print_report(std::cout, "E5.spectrum");
  return 0;
}
