// E3 — Theorem 1.1 vs the classic regimes: where does mixing-time
// parameterization change the picture?
//
// Engines: hierarchical Boruvka (this paper), flood Boruvka (GHS-style,
// pays fragment diameters), pipelined Boruvka (GKP-style O~(D + sqrt n)).
// Graphs span the mixing spectrum: expanders (tau_mix polylog), torus
// (tau ~ n), ring (tau ~ n^2, D ~ n), and the lower-bound skeleton
// (D = O(log n) yet sqrt(n)-hard for aggregation-based algorithms).
//
// What the paper predicts and the tables check:
//  * the baselines' costs track D/sqrt(n)/fragment-diameter — they degrade
//    on the ring even though tau_mix degrades worse;
//  * the hierarchical cost tracks tau_mix * subpoly: its cost RATIO to
//    tau_mix stays within a narrow band across expanders, while the
//    baselines' ratios to their own parameters vary with topology;
//  * with real (scaled) constants at simulable n, the subpolynomial factor
//    dominates absolute counts — recorded honestly in EXPERIMENTS.md.

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E3 bench_mst_vs_baselines",
                "crossover study: hierarchical vs GHS-style (analytic + kernel) vs GKP");

  struct Instance {
    std::string name;
    Graph g;
  };
  Rng rng(bench::bench_seed() * 31 + 7);
  std::vector<Instance> instances;
  instances.push_back({"regular8-512", gen::random_regular(512, 8, rng)});
  instances.push_back({"gnp-512", bench::make_family("gnp", 512, rng)});
  instances.push_back({"hypercube-512", gen::hypercube(9)});
  instances.push_back({"torus-484", gen::torus2d(22)});
  // The ring is the tau_mix = Theta(n^2) extreme; kept small because the
  // hierarchical construction genuinely pays tau_mix-length walks on it.
  instances.push_back({"ring-192", gen::ring(192)});
  instances.push_back(
      {"lb-skeleton-524", gen::lowerbound_skeleton(16, 31)});

  Table t({"graph", "n", "D", "sqrt(n)", "tau_mix", "hier_rounds",
           "hier/tau", "flood_rounds", "kernel_rounds", "piped_rounds",
           "all_exact"});

  for (auto& [name, g] : instances) {
    const Weights w = distinct_random_weights(g, rng);
    const auto D = diameter_double_sweep(g);

    RoundLedger hl;
    HierarchyParams hp;
    hp.seed = bench::bench_seed() + g.num_nodes();
    const Hierarchy h = Hierarchy::build(g, hp, hl);
    const MstStats hs = HierarchicalBoruvka(h, w).run(hl);

    RoundLedger fl, kl, pl;
    const auto fs = flood_boruvka(g, w, fl);
    const auto ks = kernel_boruvka(g, w, kl);
    const auto ps = pipelined_boruvka(g, w, pl);

    const bool ok = is_exact_mst(g, w, hs.edges) &&
                    is_exact_mst(g, w, fs.edges) &&
                    is_exact_mst(g, w, ks.edges) &&
                    is_exact_mst(g, w, ps.edges);
    AMIX_CHECK(ok);

    t.row()
        .add(name)
        .add(std::uint64_t{g.num_nodes()})
        .add(std::uint64_t{D})
        .add(std::sqrt(static_cast<double>(g.num_nodes())), 1)
        .add(std::uint64_t{h.stats().tau_mix})
        .add(hs.rounds)
        .add(static_cast<double>(hs.rounds) / h.stats().tau_mix, 1)
        .add(fs.rounds)
        .add(ks.rounds)
        .add(ps.rounds)
        .add(ok ? "yes" : "NO");
  }
  t.print_report(std::cout, "E3.crossover");

  std::cout
      << "reading guide: flood pays fragment diameters (worst on ring),\n"
         "pipelined pays D + #fragments per phase (wins once D ~ log n),\n"
         "hierarchical pays tau_mix x subpoly(n) — its hier/tau column is\n"
         "the paper's invariant; compare it across the expander rows.\n";
  return 0;
}
