// E6 — Lemmas 2.4 / 2.5: parallel random-walk load and schedule bounds.
//
// k * d(v) walks per node on an expander, T steps:
//  * Lemma 2.4: peak walks resident at any node = O(k d(v) + log n);
//  * Lemma 2.5: total schedule = O((k + log n) * T) rounds.
// Sweep k and report measured/bound ratios (they must stay bounded by a
// constant as k grows).

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E6 bench_parallel_walks",
                "Lemmas 2.4/2.5: load O(k d + log n), schedule O((k+log n)T)");

  const NodeId n = bench::large_mode() ? 2048 : 1024;
  const std::uint32_t d = 8, T = 40;
  Rng rng(bench::bench_seed() * 101 + 9);
  const Graph g = gen::random_regular(n, d, rng);
  const double logn = std::log2(static_cast<double>(n));
  BaseComm base(g);

  Table t({"k", "walks", "T", "max_node_load", "load_bound(k*d+log n)",
           "load_ratio", "rounds", "round_bound((k+log n)*T)",
           "round_ratio"});

  std::vector<double> ks, ratios;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    ParallelWalkEngine engine(base, rng.split());
    std::vector<std::uint32_t> starts;
    starts.reserve(static_cast<std::size_t>(n) * d * k);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < k * g.degree(v); ++i) starts.push_back(v);
    }
    RoundLedger ledger;
    WalkStats stats;
    engine.run(starts, WalkKind::kLazy, T, ledger, &stats);

    const double load_bound = k * d + logn;
    const double round_bound = (k + logn) * T;
    const double load_ratio = stats.max_node_load / load_bound;
    const double round_ratio =
        static_cast<double>(stats.base_rounds) / round_bound;
    ks.push_back(k);
    ratios.push_back(round_ratio);

    t.row()
        .add(std::uint64_t{k})
        .add(static_cast<std::uint64_t>(starts.size()))
        .add(std::uint64_t{T})
        .add(std::uint64_t{stats.max_node_load})
        .add(load_bound, 1)
        .add(load_ratio, 2)
        .add(stats.base_rounds)
        .add(round_bound, 1)
        .add(round_ratio, 2);

    AMIX_CHECK_MSG(load_ratio < 4.0, "Lemma 2.4 bound violated");
    AMIX_CHECK_MSG(round_ratio < 4.0, "Lemma 2.5 bound violated");
  }
  t.print_report(std::cout, "E6.walks");

  Table shape({"metric", "value", "expectation"});
  shape.row()
      .add("loglog_slope(round_ratio vs k)")
      .add(loglog_slope(ks, ratios), 3)
      .add("~0 (ratio constant in k)");
  shape.print_report(std::cout, "E6.shape");
  return 0;
}
