// E1 — Theorem 1.2: permutation routing in tau_mix * 2^O(sqrt(log n loglog n)).
//
// For each family and size: build the hierarchy, route a random permutation
// instance with the hierarchical router, and run the two baselines. The
// theorem's shape check is the last table: the log-log slope of
// (routing rounds / tau_mix) against n, which must stay far below any fixed
// power of n (the subpolynomial factor), and the per-family ratio series.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  bench::ObsSession obs(argc, argv);  // --trace-out / --metrics-out
  bench::banner("E1 bench_routing_scaling",
                "Theorem 1.2: permutation routing ~ tau_mix * subpoly(n)");

  const std::vector<std::string> families = {"regular8", "gnp", "hypercube"};
  std::vector<NodeId> sizes = {256, 384, 512, 768, 1024};
  if (bench::large_mode()) sizes.push_back(2048);

  Table t({"family", "n", "depth", "tau_mix", "build_rounds", "route_rounds",
           "route/tau", "prep", "hops", "leaf", "max_vid_load", "sp_rounds",
           "walk_undelivered"});

  // (family, hierarchy depth) -> (n series, route/tau series). The
  // subpolynomial factor is smooth only at constant depth; depth
  // transitions multiply the cost by another emulation layer (Lemma 3.2),
  // so slopes are computed per depth segment.
  std::map<std::pair<std::string, std::uint32_t>,
           std::pair<std::vector<double>, std::vector<double>>>
      series;

  for (const auto& family : families) {
    for (const NodeId n : sizes) {
      Rng rng(bench::bench_seed() * 1000003 + n);
      const Graph g = bench::make_family(family, n, rng);

      RoundLedger build_ledger;
      HierarchyParams hp;
      hp.seed = bench::bench_seed() + n;
      const Hierarchy h = Hierarchy::build(g, hp, build_ledger);

      const auto reqs = permutation_instance(g, rng);
      HierarchicalRouter router(h);
      RoundLedger route_ledger;
      const RouteStats rs = router.route(reqs, route_ledger, rng);
      AMIX_CHECK(rs.delivered == reqs.size());

      const ShortestPathRouter sp(g);
      RoundLedger sp_ledger;
      const auto sps = sp.route(reqs, sp_ledger);

      const RandomWalkRouter wr(g);
      RoundLedger wr_ledger;
      const auto wrs =
          wr.route(reqs, wr_ledger, rng, 4ULL * h.stats().tau_mix);

      const double tau = h.stats().tau_mix;
      const double ratio = static_cast<double>(rs.total_rounds) / tau;
      series[{family, h.depth()}].first.push_back(n);
      series[{family, h.depth()}].second.push_back(ratio);

      t.row()
          .add(family)
          .add(std::uint64_t{n})
          .add(std::uint64_t{h.depth()})
          .add(std::uint64_t{h.stats().tau_mix})
          .add(build_ledger.total())
          .add(rs.total_rounds)
          .add(ratio, 1)
          .add(rs.prep_rounds)
          .add(rs.hop_rounds)
          .add(rs.leaf_rounds)
          .add(std::uint64_t{rs.max_vid_load})
          .add(sps.rounds)
          .add(std::uint64_t{wrs.undelivered});
    }
  }
  t.print_report(std::cout, "E1.routing");

  Table shape({"family", "depth", "points",
               "loglog_slope(route/tau vs n)", "verdict"});
  for (const auto& [key, xy] : series) {
    if (xy.first.size() < 2) continue;
    const double slope = loglog_slope(xy.first, xy.second);
    // 2^O(sqrt(log n log log n)) has vanishing log-log slope at constant
    // depth; anything comfortably below linear supports the claim here.
    shape.row()
        .add(key.first)
        .add(std::uint64_t{key.second})
        .add(static_cast<std::uint64_t>(xy.first.size()))
        .add(slope, 3)
        .add(slope < 1.0 ? "subpolynomial-consistent" : "SUSPICIOUS");
  }
  shape.print_report(std::cout, "E1.shape");
  std::cout << "note: a depth transition (extra hierarchy level) multiplies\n"
               "cost by another measured emulation layer — Lemma 3.2's\n"
               "compounding — so slopes are per constant-depth segment.\n";
  return 0;
}
