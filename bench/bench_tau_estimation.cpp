// E11 (extension) — in-band mixing-time estimation.
//
// The paper parameterizes everything by tau_mix(G) but leaves "how do the
// nodes know it" implicit. The anonymous-counting-walk estimator closes
// that gap; this bench compares the distributed estimate against the exact
// Definition-2.1 value across the mixing spectrum and reports the protocol
// cost (which is itself ~O(tau_mix * trials + D log tau_mix) rounds).

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E11 bench_tau_estimation",
                "anonymous-walk estimator vs exact Definition-2.1 tau_mix");

  struct Instance {
    std::string name;
    Graph g;
  };
  Rng rng(bench::bench_seed() * 67 + 29);
  std::vector<Instance> instances;
  instances.push_back({"regular8-256", gen::random_regular(256, 8, rng)});
  instances.push_back({"gnp-256", bench::make_family("gnp", 256, rng)});
  instances.push_back({"hypercube-256", gen::hypercube(8)});
  instances.push_back({"torus-256", gen::torus2d(16)});
  instances.push_back({"ring-96", gen::ring(96)});
  instances.push_back({"barbell-64", gen::barbell(64)});

  Table t({"graph", "n", "exact_tau", "estimated_tau", "ratio", "probes",
           "protocol_rounds", "rounds/exact_tau"});

  for (auto& [name, g] : instances) {
    Rng probe = rng.split();
    const auto exact =
        mixing_time_sampled(g, WalkKind::kLazy, 4, probe, 1u << 24);
    RoundLedger ledger;
    TauEstimatorParams params;
    const auto est = estimate_tau_distributed(g, params, rng, ledger);
    t.row()
        .add(name)
        .add(std::uint64_t{g.num_nodes()})
        .add(std::uint64_t{exact})
        .add(std::uint64_t{est.tau})
        .add(static_cast<double>(est.tau) / exact, 2)
        .add(std::uint64_t{est.probes})
        .add(est.rounds)
        .add(static_cast<double>(est.rounds) / exact, 1);
  }
  t.print_report(std::cout, "E11.tau-estimation");
  std::cout << "the estimate is a constant-factor proxy on a doubling grid\n"
               "(ratio within [1/8, 8]) at protocol cost a small multiple\n"
               "of tau_mix itself — usable as the tau the theorems need.\n";
  return 0;
}
