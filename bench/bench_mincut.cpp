// E9 — Section 4's closing claim: approximate min cut via the same
// machinery. Tree-packing approximation vs exact Stoer-Wagner on planted-
// bottleneck instances and standard families; per-tree rounds charged from
// a real hierarchical MST run on the same graph.

#include <set>

#include "bench_common.hpp"

namespace {

amix::Graph planted_bottleneck(amix::NodeId half, std::uint32_t bridge_edges,
                               amix::Rng& rng) {
  using namespace amix;
  const Graph a = gen::random_regular(half, 6, rng);
  const Graph b = gen::random_regular(half, 6, rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    edges.emplace_back(a.edge_u(e), a.edge_v(e));
  }
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    edges.emplace_back(b.edge_u(e) + half, b.edge_v(e) + half);
  }
  std::set<std::uint64_t> used;
  while (used.size() < bridge_edges) {
    const NodeId u = static_cast<NodeId>(rng.next_below(half));
    const NodeId v = static_cast<NodeId>(half + rng.next_below(half));
    if (used.insert((static_cast<std::uint64_t>(u) << 32) | v).second) {
      edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(2 * half, edges);
}

}  // namespace

int main() {
  using namespace amix;
  bench::banner("E9 bench_mincut",
                "Section 4: tree-packing min cut vs exact Stoer-Wagner");

  struct Instance {
    std::string name;
    Graph g;
  };
  Rng rng(bench::bench_seed() * 41 + 11);
  std::vector<Instance> instances;
  instances.push_back({"planted-2", planted_bottleneck(64, 2, rng)});
  instances.push_back({"planted-5", planted_bottleneck(64, 5, rng)});
  instances.push_back({"planted-9", planted_bottleneck(96, 9, rng)});
  instances.push_back({"barbell-128", gen::barbell(128)});
  instances.push_back({"regular6-128", gen::random_regular(128, 6, rng)});
  instances.push_back({"hypercube-128", gen::hypercube(7)});

  Table t({"graph", "n", "exact_cut", "approx_cut", "ratio", "trees",
           "mincut_rounds", "per_tree_rounds"});

  for (auto& [name, g] : instances) {
    // Charge each packed tree what a real distributed MST run costs here.
    RoundLedger mst_ledger;
    HierarchyParams hp;
    hp.seed = bench::bench_seed() + g.num_nodes();
    const Hierarchy h = Hierarchy::build(g, hp, mst_ledger);
    Rng wrng = rng.split();
    const Weights w = distinct_random_weights(g, wrng);
    const MstStats mst = HierarchicalBoruvka(h, w).run(mst_ledger);
    AMIX_CHECK(is_exact_mst(g, w, mst.edges));

    RoundLedger ledger;
    const auto stats = approx_mincut_tree_packing(g, rng, ledger, mst.rounds);
    const auto exact = stoer_wagner_mincut(g);
    const double ratio =
        static_cast<double>(stats.cut_value) / static_cast<double>(exact);
    AMIX_CHECK_MSG(stats.cut_value >= exact && stats.cut_value <= 2 * exact,
                   "tree-packing approximation out of its guarantee");

    t.row()
        .add(name)
        .add(std::uint64_t{g.num_nodes()})
        .add(exact)
        .add(stats.cut_value)
        .add(ratio, 3)
        .add(std::uint64_t{stats.trees})
        .add(stats.rounds)
        .add(mst.rounds);
  }
  t.print_report(std::cout, "E9.mincut");
  return 0;
}
