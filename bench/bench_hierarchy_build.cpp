// E7 — Lemmas 3.1-3.3: hierarchical-embedding construction cost, by stage.
//
// Per size: the build's round breakdown (leader+seed / G0 / levels /
// portals), the measured per-level emulation overheads (Lemma 3.1's
// O(log^2 n) factors), Las Vegas retries, and the deepest overlay's total
// round cost (the compounding Lemma 3.2 warns about). Every row also
// carries the standard memory counters (peak_rss_mb, bytes_per_edge via
// bench_common.hpp set_memory_counters) so build-memory trends land in
// the committed bench artifacts alongside the round counts.

#include <map>

#include "bench_common.hpp"

namespace {

/// Minimal counter sink for bench::set_memory_counters (the helper is
/// templated on the state type precisely so non-google-benchmark
/// binaries like this one can reuse it).
struct MemCounters {
  std::map<std::string, double> counters;
};

}  // namespace

int main() {
  using namespace amix;
  bench::banner("E7 bench_hierarchy_build",
                "Lemmas 3.1-3.3: construction cost by stage");

  std::vector<NodeId> sizes = {256, 512, 1024};
  if (bench::large_mode()) sizes.push_back(2048);

  Table t({"n", "beta", "depth", "tau_mix", "retries", "total_rounds",
           "seed_bits_phase", "g0_phase", "levels_phase", "portals_phase",
           "g0_round_cost", "deepest_round_cost", "peak_rss_mb",
           "bytes_per_edge"});
  Table emul({"n", "level", "emul_parent_rounds", "log2n^2"});

  for (const NodeId n : sizes) {
    Rng rng(bench::bench_seed() * 131 + n);
    const Graph g = gen::random_regular(n, 8, rng);
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = bench::bench_seed() + 3 * n;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    const auto& s = h.stats();
    MemCounters mem;
    bench::set_memory_counters(mem, g.num_edges());

    t.row()
        .add(std::uint64_t{n})
        .add(std::uint64_t{s.beta})
        .add(std::uint64_t{s.depth})
        .add(std::uint64_t{s.tau_mix})
        .add(std::uint64_t{s.retries})
        .add(ledger.total())
        .add(ledger.phase_total("leader+seed"))
        .add(ledger.phase_total("g0-embed"))
        .add(ledger.phase_total("levels"))
        .add(ledger.phase_total("portals"))
        .add(s.g0_round_cost)
        .add(s.deepest_round_cost)
        .add(mem.counters["peak_rss_mb"], 1)
        .add(mem.counters["bytes_per_edge"], 1);

    const double l2 = std::log2(static_cast<double>(n));
    for (std::size_t i = 0; i < s.emul_parent_rounds.size(); ++i) {
      emul.row()
          .add(std::uint64_t{n})
          .add(static_cast<std::uint64_t>(i + 1))
          .add(s.emul_parent_rounds[i])
          .add(l2 * l2, 1);
    }
  }
  t.print_report(std::cout, "E7.build");
  emul.print_report(std::cout, "E7.emulation-overheads");
  std::cout << "Lemma 3.1 check: emul_parent_rounds should track log2n^2 up\n"
               "to a modest constant, level after level.\n";
  return 0;
}
