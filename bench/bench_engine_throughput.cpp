// Engine throughput (google-benchmark): what batching and caching buy in
// wall-clock terms. One mixed workload (MST + two routing instances +
// walks) on one graph, executed three ways:
//
//   Arg(0) sequential — the pre-engine workflow: each query builds its
//          own hierarchy and runs alone.
//   Arg(1) batched    — a fresh QueryEngine per iteration: one hierarchy
//          build, one round-multiplexed batch.
//   Arg(2) cached     — a warm engine reused across iterations: the
//          steady state of a long-lived session (cache hit every time).
//
// items processed = queries completed, so items/sec is directly
// comparable across the three modes. The batched/sequential and
// cached/sequential ratios are the numbers DESIGN.md §11 quotes;
// tools/perf_guard.py gates BM_EngineThroughput against
// BENCH_simulator.json like the substrate benches.

#include <benchmark/benchmark.h>

#include "amix/amix.hpp"
#include "bench_common.hpp"

namespace {

using namespace amix;

Graph workload_graph() {
  Rng rng(17);
  return gen::random_regular(96, 6, rng);
}

std::vector<QuerySpec> workload(const Graph& g) {
  Rng rng(18);
  std::vector<QuerySpec> specs;
  {
    QuerySpec s;
    s.op = MstQuery{distinct_random_weights(g, rng), MstParams{}};
    s.seed = 1;
    specs.push_back(std::move(s));
  }
  for (std::uint64_t seed : {2, 3}) {
    QuerySpec s;
    s.op = RouteQuery{permutation_instance(g, rng), 1};
    s.seed = seed;
    specs.push_back(std::move(s));
  }
  {
    std::vector<std::uint32_t> starts(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) starts[v] = v;
    QuerySpec s;
    s.op = WalkQuery{std::move(starts), WalkKind::kLazy, 8};
    s.seed = 4;
    specs.push_back(std::move(s));
  }
  return specs;
}

void run_sequential(const Graph& g, const std::vector<QuerySpec>& specs) {
  for (const QuerySpec& spec : specs) {
    RoundLedger ledger;
    const Hierarchy h = Hierarchy::build(g, HierarchyParams{}, ledger);
    const std::uint64_t qseed = query_seed(spec);
    if (const auto* q = std::get_if<MstQuery>(&spec.op)) {
      MstParams params = q->params;
      params.seed = qseed;
      benchmark::DoNotOptimize(
          HierarchicalBoruvka(h, q->weights).run(ledger, params).rounds);
    } else if (const auto* q = std::get_if<RouteQuery>(&spec.op)) {
      Rng rng(qseed);
      benchmark::DoNotOptimize(HierarchicalRouter(h)
                                   .route_in_phases(q->requests, q->phases,
                                                    ledger, rng)
                                   .total_rounds);
    } else if (const auto* q = std::get_if<WalkQuery>(&spec.op)) {
      BaseComm base(g);
      ParallelWalkEngine walker(base, Rng(qseed));
      benchmark::DoNotOptimize(
          walker.run(q->starts, q->kind, q->steps, ledger, nullptr).size());
    }
  }
}

void BM_EngineThroughput(benchmark::State& state) {
  const Graph g = workload_graph();
  const std::vector<QuerySpec> specs = workload(g);
  const std::int64_t mode = state.range(0);

  QueryEngine warm(g);  // mode 2: cache survives across iterations
  if (mode == 2) {
    for (const QuerySpec& s : specs) warm.submit(s);
    benchmark::DoNotOptimize(warm.run().engine_rounds);  // prime the cache
  }

  for (auto _ : state) {
    if (mode == 0) {
      run_sequential(g, specs);
    } else if (mode == 1) {
      QueryEngine eng(g);
      for (const QuerySpec& s : specs) eng.submit(s);
      benchmark::DoNotOptimize(eng.run().engine_rounds);
    } else {
      for (const QuerySpec& s : specs) warm.submit(s);
      benchmark::DoNotOptimize(warm.run().engine_rounds);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()));
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_EngineThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
