// E10 (ablation) — round-accounting fidelity checks:
//
//  (a) MST charging mode: "amortized" measures one routing instance per
//      Boruvka iteration and multiplies by the cast count (the request
//      multiset is identical across casts); "exact" measures every cast.
//      Their agreement quantifies the approximation the default makes.
//  (b) Portal-sampling substitution (DESIGN.md §5): portals are sampled
//      centrally from the walk-limit distribution; the charge comes from a
//      measured single-target batch x beta. We report the portal phase's
//      share of the build so the substitution's cost weight is visible.

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E10 bench_charging_ablation",
                "accounting fidelity: amortized vs exact charging");

  Table t({"n", "family", "amortized_rounds", "exact_rounds", "ratio",
           "instances_amortized", "instances_exact"});

  for (const NodeId n : {128u, 192u, 256u}) {
    for (const std::string family : {"regular8", "gnp"}) {
      Rng rng(bench::bench_seed() * 53 + n);
      const Graph g = bench::make_family(family, n, rng);
      const Weights w = distinct_random_weights(g, rng);
      RoundLedger hb;
      HierarchyParams hp;
      hp.seed = bench::bench_seed() + n;
      const Hierarchy h = Hierarchy::build(g, hp, hb);

      MstParams amortized;
      MstParams exact;
      exact.exact_charging = true;
      RoundLedger l1, l2;
      const auto a = HierarchicalBoruvka(h, w).run(l1, amortized);
      const auto b = HierarchicalBoruvka(h, w).run(l2, exact);
      AMIX_CHECK(a.edges == b.edges);  // same seed, same trajectory

      t.row()
          .add(std::uint64_t{n})
          .add(family)
          .add(a.rounds)
          .add(b.rounds)
          .add(static_cast<double>(a.rounds) / b.rounds, 3)
          .add(std::uint64_t{a.routing_instances})
          .add(std::uint64_t{b.routing_instances});
    }
  }
  t.print_report(std::cout, "E10.charging");

  Table p({"n", "build_rounds", "portal_phase", "portal_share"});
  for (const NodeId n : {256u, 512u}) {
    Rng rng(bench::bench_seed() * 59 + n);
    const Graph g = gen::random_regular(n, 8, rng);
    RoundLedger ledger;
    HierarchyParams hp;
    hp.seed = bench::bench_seed() + 7 * n;
    Hierarchy::build(g, hp, ledger);
    p.row()
        .add(std::uint64_t{n})
        .add(ledger.total())
        .add(ledger.phase_total("portals"))
        .add(static_cast<double>(ledger.phase_total("portals")) /
                 ledger.total(),
             4);
  }
  p.print_report(std::cout, "E10.portal-share");
  std::cout << "amortized/exact near 1.0 validates the default charging;\n"
               "the portal share shows Lemma 3.3's beta^2 term dominating\n"
               "construction, as the paper's own accounting predicts.\n";
  return 0;
}
