#pragma once

// Shared helpers for the experiment binaries (E1..E9; see DESIGN.md §2.4).
//
// Every bench prints fixed-width tables plus CSV blocks via amix::Table.
// Environment knobs:
//   AMIX_BENCH_LARGE=1   extend sweeps to larger n (slower)
//   AMIX_BENCH_SEED=<u>  change the experiment seed (default 1)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "amix/amix.hpp"

namespace amix::bench {

/// Peak resident set size of this process in bytes (0 where unsupported).
/// Monotone over the process lifetime — a row's value reflects the
/// high-water mark up to that row, which is the honest figure for "does
/// this configuration fit in memory".
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Attach the standard memory counters to a google-benchmark row:
/// peak_rss_mb on every row, plus edges and bytes_per_edge when the row
/// has a graph (`edges` > 0). Templated on the state type so this header
/// stays benchmark-library-agnostic (the experiment binaries include it
/// too).
template <typename BenchState>
void set_memory_counters(BenchState& state, std::uint64_t edges = 0) {
  const double rss = static_cast<double>(peak_rss_bytes());
  state.counters["peak_rss_mb"] = rss / (1024.0 * 1024.0);
  if (edges > 0) {
    state.counters["edges"] = static_cast<double>(edges);
    state.counters["bytes_per_edge"] = rss / static_cast<double>(edges);
  }
}

inline bool large_mode() {
  const char* v = std::getenv("AMIX_BENCH_LARGE");
  return v != nullptr && v[0] == '1';
}

inline std::uint64_t bench_seed() {
  const char* v = std::getenv("AMIX_BENCH_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 1;
}

/// The hierarchy scale profile (DESIGN.md §15.4), shared by the scale
/// rows of bench_substrate_scale and bench_mst_scaling. Default
/// HierarchyParams measure per-overlay mixing times (Theta(log n) walk
/// lengths with ~10-100x constants) — paper-faithful, but super-linear
/// wall time that caps builds near n = 10^4. The profile pins every walk
/// length, takes the minimum beta/degrees, and caps portal candidate
/// lists; all Las Vegas gates (balance, per-part connectivity, portal
/// completeness) still verify, and the MST rows still check exactness,
/// so a profile build that *finishes* is a correct hierarchy — the rows
/// measure the construction substrate, not the mixing-time measurement.
///   leaf_target=2000 keeps the tree shallow (build-cost optimal);
///   leaf_target=25 keeps leaf BFS delivery cheap (pipeline rows).
inline HierarchyParams scale_profile(std::uint32_t threads,
                                     std::uint32_t leaf_target) {
  HierarchyParams hp;
  hp.seed = bench_seed() + 0x686965ULL;
  hp.beta = 4;
  hp.leaf_target = leaf_target;
  hp.level_degree = 4;
  hp.g0_out_degree = 4;
  hp.tau_mix = 16;
  hp.level_tau = 40;
  // Half-slack waves: ~8 walks per virtual node per wave instead of 24.
  // Convergence takes a few more (geometrically shrinking) waves but the
  // peak walk state shrinks proportionally; together with the degree-3
  // base graph (nv = 3n) this keeps the n=10^6 build inside CI's 2 GB
  // RSS gate.
  hp.walk_slack = 0.5;
  // The portal table stores O(nv * degree * depth) candidate vids
  // uncapped — the largest single structure at n >= 10^6. 64 per slot is
  // comfortably Omega(log n) at every bench size.
  hp.portal_candidate_cap = 64;
  hp.exec = ExecPolicy{threads};
  return hp;
}

/// The standard graph families of the evaluation, keyed by name.
inline Graph make_family(const std::string& family, NodeId n, Rng& rng) {
  if (family == "regular8") return gen::random_regular(n, 8, rng);
  if (family == "regular6") return gen::random_regular(n, 6, rng);
  if (family == "gnp") {
    const double p = 2.5 * std::log(static_cast<double>(n)) / n;
    return gen::connected_gnp(n, p, rng);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 0;
    while ((NodeId{1} << (dim + 1)) <= n) ++dim;
    return gen::hypercube(dim);
  }
  if (family == "torus") {
    NodeId side = 2;
    while ((side + 1) * (side + 1) <= n) ++side;
    return gen::torus2d(side);
  }
  if (family == "ring") return gen::ring(n);
  AMIX_CHECK_MSG(false, "unknown family");
  return {};
}

/// `--trace-out <f.json>` / `--metrics-out <f.json|f.csv>` support for the
/// experiment binaries: when either flag is present, the whole bench runs
/// under a TraceRecorder + ObsInstrument (so every hierarchy build, route,
/// and MST run it performs is spanned and metered), and the artifacts are
/// written when the session ends. Without the flags the session is inert —
/// no recorder is installed and the bench numbers are untouched.
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s == "--trace-out" && i + 1 < argc) {
        trace_out_ = argv[++i];
      } else if (s == "--metrics-out" && i + 1 < argc) {
        metrics_out_ = argv[++i];
      }
    }
    if (enabled()) {
      rec_ = std::make_unique<obs::TraceRecorder>();
      ins_ = std::make_unique<obs::ObsInstrument>(*rec_);
      rec_scope_ = std::make_unique<obs::ScopedRecorder>(rec_.get());
      ins_scope_ = std::make_unique<congest::ScopedInstrument>(ins_.get());
    }
  }
  ~ObsSession() { finish(); }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool enabled() const {
    return !trace_out_.empty() || !metrics_out_.empty();
  }

  /// Write the requested artifacts (idempotent; also runs at destruction).
  void finish() {
    if (!enabled() || written_) return;
    written_ = true;
    if (!trace_out_.empty()) {
      std::ofstream os(trace_out_);
      rec_->write_chrome_trace(os);
      std::cout << "# wrote trace: " << trace_out_ << " ("
                << rec_->spans().size() << " spans)\n";
    }
    if (!metrics_out_.empty()) {
      std::ofstream os(metrics_out_);
      const bool csv =
          metrics_out_.size() >= 4 &&
          metrics_out_.substr(metrics_out_.size() - 4) == ".csv";
      if (csv) {
        rec_->metrics().write_csv(os);
      } else {
        rec_->metrics().write_json(os);
      }
      std::cout << "# wrote metrics: " << metrics_out_ << "\n";
    }
  }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  bool written_ = false;
  std::unique_ptr<obs::TraceRecorder> rec_;
  std::unique_ptr<obs::ObsInstrument> ins_;
  std::unique_ptr<obs::ScopedRecorder> rec_scope_;
  std::unique_ptr<congest::ScopedInstrument> ins_scope_;
};

/// Header banner shared by all experiment binaries.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n################################################\n"
            << "# " << id << " — " << claim << "\n"
            << "# seed=" << bench_seed()
            << (large_mode() ? " (large mode)" : "") << "\n"
            << "################################################\n";
}

}  // namespace amix::bench
