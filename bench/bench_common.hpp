#pragma once

// Shared helpers for the experiment binaries (E1..E9; see DESIGN.md §2.4).
//
// Every bench prints fixed-width tables plus CSV blocks via amix::Table.
// Environment knobs:
//   AMIX_BENCH_LARGE=1   extend sweeps to larger n (slower)
//   AMIX_BENCH_SEED=<u>  change the experiment seed (default 1)

#include <cstdlib>
#include <iostream>
#include <string>

#include "amix/amix.hpp"

namespace amix::bench {

inline bool large_mode() {
  const char* v = std::getenv("AMIX_BENCH_LARGE");
  return v != nullptr && v[0] == '1';
}

inline std::uint64_t bench_seed() {
  const char* v = std::getenv("AMIX_BENCH_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 1;
}

/// The standard graph families of the evaluation, keyed by name.
inline Graph make_family(const std::string& family, NodeId n, Rng& rng) {
  if (family == "regular8") return gen::random_regular(n, 8, rng);
  if (family == "regular6") return gen::random_regular(n, 6, rng);
  if (family == "gnp") {
    const double p = 2.5 * std::log(static_cast<double>(n)) / n;
    return gen::connected_gnp(n, p, rng);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 0;
    while ((NodeId{1} << (dim + 1)) <= n) ++dim;
    return gen::hypercube(dim);
  }
  if (family == "torus") {
    NodeId side = 2;
    while ((side + 1) * (side + 1) <= n) ++side;
    return gen::torus2d(side);
  }
  if (family == "ring") return gen::ring(n);
  AMIX_CHECK_MSG(false, "unknown family");
  return {};
}

/// Header banner shared by all experiment binaries.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n################################################\n"
            << "# " << id << " — " << claim << "\n"
            << "# seed=" << bench_seed()
            << (large_mode() ? " (large mode)" : "") << "\n"
            << "################################################\n";
}

}  // namespace amix::bench
