// Churn economics: Hierarchy::apply_delta vs a full rebuild, in charged
// CONGEST rounds (the simulated network's cost) and wall time (ours).
//
// Row (n, 0) is the acceptance case — one connectivity-preserving edge
// delete — where repair_rounds must come in strictly under
// rebuild_rounds; (n, s) rows rewire s random double-edge swaps to show
// how the advantage shrinks as damage widens. Counters land in the JSON
// output, so the committed BENCH_simulator.json records the ratio.

#include <benchmark/benchmark.h>

#include "amix/amix.hpp"
#include "bench_common.hpp"

namespace {

using namespace amix;

void BM_ChurnRepairVsRebuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto swaps = static_cast<std::uint32_t>(state.range(1));
  Rng rng(57 + n);
  const Graph g = gen::random_regular(n, 8, rng);
  HierarchyParams hp;
  hp.seed = 59;
  hp.max_retries = 10;
  RoundLedger build_ledger;
  Hierarchy h = Hierarchy::build(g, hp, build_ledger);

  // The mutated topology: one connectivity-preserving edge delete when
  // swaps == 0 (the single-edge-delta acceptance case), otherwise
  // `swaps` degree-preserving double-edge swaps.
  Graph g2 = g;
  if (swaps == 0) {
    for (const auto& [u, v] : g.edges()) {
      Graph cand = g.apply_delta({{u, v, false}});
      if (is_connected(cand)) {
        g2 = std::move(cand);
        break;
      }
    }
  } else {
    g2 = gen::degree_preserving_rewire(g, swaps, rng);
  }

  // What the honest alternative charges: a fresh build on the mutated
  // graph (not timed — the timed loop is the repair path).
  RoundLedger rebuild_ledger;
  const Hierarchy fresh = Hierarchy::build(g2, hp, rebuild_ledger);

  std::uint64_t repair_rounds = 0;
  std::uint64_t fallbacks = 0;
  for (auto _ : state) {
    RoundLedger rl;
    const RepairOutcome out = h.apply_delta(g2, rl);
    if (!out.applied) {
      ++fallbacks;
      continue;
    }
    repair_rounds = out.repair_rounds;
    // Repair back so the next iteration starts from the same state.
    RoundLedger rl_back;
    const RepairOutcome back = h.apply_delta(g, rl_back);
    AMIX_CHECK_MSG(back.applied, back.reason);
  }

  state.counters["repair_rounds"] = static_cast<double>(repair_rounds);
  state.counters["rebuild_rounds"] =
      static_cast<double>(rebuild_ledger.total());
  state.counters["build_rounds"] = static_cast<double>(build_ledger.total());
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  if (repair_rounds > 0) {
    state.counters["rebuild_over_repair"] =
        static_cast<double>(rebuild_ledger.total()) /
        static_cast<double>(repair_rounds);
  }
  amix::bench::set_memory_counters(state, g.num_edges());
}
BENCHMARK(BM_ChurnRepairVsRebuild)
    ->Args({256, 0})
    ->Args({256, 8})
    ->Args({1024, 0})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
