// E8 — Lemma 3.4 trade-off: sweep the branching factor beta at fixed n.
//
// Small beta => deep hierarchy => more levels of emulation overhead per
// packet (the 2T(m/beta) * log^2 n recursion compounds); large beta =>
// shallower tree but a beta^2 portal-construction term and thinner
// inter-part capacity. The optimum sits in between — the paper picks
// beta = 2^Theta(sqrt(log n log log n)).

#include "bench_common.hpp"

int main() {
  using namespace amix;
  bench::banner("E8 bench_beta_ablation",
                "Lemma 3.4: build + route cost as a function of beta");

  const NodeId n = bench::large_mode() ? 1024 : 512;
  Rng graph_rng(bench::bench_seed() * 17 + 5);
  const Graph g = gen::random_regular(n, 8, graph_rng);

  Table t({"beta", "depth", "build_rounds", "route_rounds", "route/tau",
           "hops", "leaf", "deepest_round_cost"});

  for (const std::uint32_t beta : {4u, 8u, 16u, 32u}) {
    Rng rng(bench::bench_seed() * 29 + beta);
    RoundLedger build;
    HierarchyParams hp;
    hp.beta = beta;
    hp.seed = bench::bench_seed() + beta;
    const Hierarchy h = Hierarchy::build(g, hp, build);

    const auto reqs = permutation_instance(g, rng);
    HierarchicalRouter router(h);
    RoundLedger ledger;
    const RouteStats rs = router.route(reqs, ledger, rng);
    AMIX_CHECK(rs.delivered == reqs.size());

    t.row()
        .add(std::uint64_t{beta})
        .add(std::uint64_t{h.depth()})
        .add(build.total())
        .add(rs.total_rounds)
        .add(static_cast<double>(rs.total_rounds) / h.stats().tau_mix, 1)
        .add(rs.hop_rounds)
        .add(rs.leaf_rounds)
        .add(h.stats().deepest_round_cost);
  }
  t.print_report(std::cout, "E8.beta");
  std::cout << "reading guide: route_rounds should be minimized at an\n"
               "intermediate beta (deeper hierarchies compound emulation\n"
               "overhead; beta=default_beta(n)="
            << default_beta(n) << " for n=" << n << ").\n";
  return 0;
}
