// E2 — Theorem 1.1: MST in tau_mix * 2^O(sqrt(log n log log n)) rounds.
//
// For each family and size: build the hierarchy, run the hierarchical
// Boruvka, verify against Kruskal, and report rounds, rounds/tau_mix,
// iteration counts, and the Lemma 4.1 telemetry. The shape table reports
// the log-log slope of rounds/tau_mix against n.
//
// The E2.scale table runs the pipeline at substrate scale (10^5 nodes;
// 10^6 under AMIX_BENCH_LARGE=1) with the DESIGN.md §15.4 scale profile —
// pinned walk lengths, degree-4 overlays, capped portal candidate lists —
// and still verifies exactness against Kruskal. Those are the same
// settings as bench_substrate_scale's BM_PipelineMst rows; here they get
// the E-table treatment (round counts + memory) instead of wall time.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amix;
  bench::ObsSession obs(argc, argv);  // --trace-out / --metrics-out
  bench::banner("E2 bench_mst_scaling",
                "Theorem 1.1: MST rounds ~ tau_mix * subpoly(n)");

  const std::vector<std::string> families = {"regular8", "gnp"};
  std::vector<NodeId> sizes = {256, 384, 512, 768};
  if (bench::large_mode()) sizes.push_back(1024);

  Table t({"family", "n", "hdepth", "tau_mix", "build_rounds", "mst_rounds",
           "mst/tau", "iters", "max_depth", "max_indeg/deg", "verified"});
  // Slopes per constant hierarchy depth (see E1 for why).
  std::map<std::pair<std::string, std::uint32_t>,
           std::pair<std::vector<double>, std::vector<double>>>
      series;

  for (const auto& family : families) {
    for (const NodeId n : sizes) {
      Rng rng(bench::bench_seed() * 7 + n);
      const Graph g = bench::make_family(family, n, rng);
      const Weights w = distinct_random_weights(g, rng);

      RoundLedger ledger;
      HierarchyParams hp;
      hp.seed = bench::bench_seed() + 13 * n;
      const Hierarchy h = Hierarchy::build(g, hp, ledger);
      const std::uint64_t build_rounds = ledger.total();

      const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
      const bool ok = is_exact_mst(g, w, stats.edges);
      AMIX_CHECK(ok);

      const double tau = h.stats().tau_mix;
      const double ratio = static_cast<double>(stats.rounds) / tau;
      series[{family, h.depth()}].first.push_back(n);
      series[{family, h.depth()}].second.push_back(ratio);

      t.row()
          .add(family)
          .add(std::uint64_t{n})
          .add(std::uint64_t{h.depth()})
          .add(std::uint64_t{h.stats().tau_mix})
          .add(build_rounds)
          .add(stats.rounds)
          .add(ratio, 1)
          .add(std::uint64_t{stats.iterations})
          .add(std::uint64_t{stats.max_tree_depth})
          .add(stats.max_indegree_over_degree, 2)
          .add(ok ? "yes" : "NO");
    }
  }
  t.print_report(std::cout, "E2.mst");

  Table shape({"family", "hdepth", "points", "loglog_slope(mst/tau vs n)",
               "verdict"});
  for (const auto& [key, xy] : series) {
    if (xy.first.size() < 2) continue;
    const double slope = loglog_slope(xy.first, xy.second);
    shape.row()
        .add(key.first)
        .add(std::uint64_t{key.second})
        .add(static_cast<std::uint64_t>(xy.first.size()))
        .add(slope, 3)
        .add(slope < 1.3 ? "subpolynomial-consistent" : "SUSPICIOUS");
  }
  shape.print_report(std::cout, "E2.shape");

  // --- E2.scale: the pipeline at substrate scale, scale profile. ---
  {
    std::vector<NodeId> big = {100000};
    if (bench::large_mode()) big.push_back(1000000);

    Table ts({"n", "hdepth", "tau", "build_rounds", "mst_rounds", "iters",
              "peak_rss_mb", "verified"});
    for (const NodeId n : big) {
      Rng rng(bench::bench_seed() * 29 + n);
      const Graph g = gen::random_regular(n, 3, rng);
      const Weights w = distinct_random_weights(g, rng);

      RoundLedger ledger;
      HierarchyParams hp = bench::scale_profile(/*threads=*/1,
                                                /*leaf_target=*/25);
      hp.seed = bench::bench_seed() + 17 * n;
      const Hierarchy h = Hierarchy::build(g, hp, ledger);
      const std::uint64_t build_rounds = ledger.total();

      const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
      const bool ok = is_exact_mst(g, w, stats.edges);
      AMIX_CHECK(ok);

      struct {
        std::map<std::string, double> counters;
      } mem;
      bench::set_memory_counters(mem, g.num_edges());
      ts.row()
          .add(std::uint64_t{n})
          .add(std::uint64_t{h.depth()})
          .add(std::uint64_t{h.stats().tau_mix})
          .add(build_rounds)
          .add(stats.rounds)
          .add(std::uint64_t{stats.iterations})
          .add(mem.counters["peak_rss_mb"], 1)
          .add(ok ? "yes" : "NO");
    }
    ts.print_report(std::cout, "E2.scale");
  }
  return 0;
}
