// Substrate scale sweep: can the simulator construct, build, and walk
// 10^7-node instances in one process?
//
// Two row families per generator (G(n,p) and SBM), n in {1e5, 1e6, 1e7}:
//   BM_BuildGraph*  — skip-sampling generation + streaming CSR build
//                     (O(nnz) end to end; the committed JSON records the
//                     wall time and the bytes-per-edge footprint).
//   BM_WalkSweep*   — a 32-step lazy-walk sweep (one walk per node)
//                     through the persistent-scratch ParallelWalkEngine,
//                     at 1, 2, and 8 shards. Single-core machines record
//                     sharding overhead, not speedup; the row exists so
//                     regressions in either direction are visible.
//
// Hierarchy rows (PR 9), same n ladder:
//   BM_HierarchyBuild — a full hierarchy build (G0 + levels + portals)
//                     under the documented scale profile (DESIGN.md
//                     §15.4: degree-3 regular base, beta=4, pinned walk
//                     lengths), at 1, 2, and 8 build shards. As with
//                     BM_WalkSweep*, single-core machines record the
//                     sharding overhead, not a speedup — the 1/2/8 rows
//                     exist so multi-core runs can hold the >=3x-at-8
//                     contract and so overhead regressions are visible.
//   BM_PipelineMst  — the full paper pipeline: build (small-leaf scale
//                     profile) + hierarchical Boruvka + exact-MST verify.
//
// Every row carries peak_rss_mb / edges / bytes_per_edge counters (see
// bench_common.hpp). The 1e7 rows are the acceptance gate of the scale
// work; keep them last so smaller rows report pre-spike RSS.

#include <benchmark/benchmark.h>

#include "amix/amix.hpp"
#include "bench_common.hpp"

namespace {

using namespace amix;

// Expected degree ~8 for both families, matching the regular8 workhorse
// family of the other benches.
constexpr double kExpectedDegree = 8.0;
constexpr std::uint32_t kSbmBlocks = 16;
constexpr std::uint32_t kWalkSteps = 32;

Graph make_gnp(NodeId n, Rng& rng) {
  return gen::gnp(n, kExpectedDegree / static_cast<double>(n), rng);
}

Graph make_sbm(NodeId n, Rng& rng) {
  // ~90% of a node's expected edges inside its block.
  const double nd = static_cast<double>(n);
  const double block = nd / kSbmBlocks;
  const double p_in = 0.9 * kExpectedDegree / block;
  const double p_out = 0.1 * kExpectedDegree / (nd - block);
  return gen::sbm(n, kSbmBlocks, p_in, p_out, rng);
}

template <Graph (*Make)(NodeId, Rng&)>
void BM_BuildGraph(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t edges = 0;
  std::uint64_t graph_bytes = 0;
  for (auto _ : state) {
    Rng rng(amix::bench::bench_seed() + n);
    const Graph g = Make(n, rng);
    benchmark::DoNotOptimize(g.num_edges());
    edges = g.num_edges();
    graph_bytes = g.memory_bytes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges));
  amix::bench::set_memory_counters(state, edges);
  state.counters["graph_mb"] =
      static_cast<double>(graph_bytes) / (1024.0 * 1024.0);
}

void BM_BuildGnp(benchmark::State& state) { BM_BuildGraph<make_gnp>(state); }
void BM_BuildSbm(benchmark::State& state) { BM_BuildGraph<make_sbm>(state); }

template <Graph (*Make)(NodeId, Rng&)>
void BM_WalkSweep(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  Rng rng(amix::bench::bench_seed() + n);
  const Graph g = Make(n, rng);
  BaseComm base(g);
  std::vector<std::uint32_t> starts(n);
  for (NodeId v = 0; v < n; ++v) starts[v] = v;
  ParallelWalkEngine engine(base, Rng(7), ExecPolicy{threads});
  std::uint64_t moves = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    WalkStats stats;
    const auto ends =
        engine.run(starts, WalkKind::kLazy, kWalkSteps, ledger, &stats);
    benchmark::DoNotOptimize(ends.data());
    moves = stats.total_moves;
  }
  // Throughput unit: walk-steps advanced per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * kWalkSteps);
  amix::bench::set_memory_counters(state, g.num_edges());
  state.counters["moves"] = static_cast<double>(moves);
}

void BM_WalkSweepGnp(benchmark::State& state) {
  BM_WalkSweep<make_gnp>(state);
}
void BM_WalkSweepSbm(benchmark::State& state) {
  BM_WalkSweep<make_sbm>(state);
}

// Degree-3 regular base: nv = 2m = 3n virtual nodes. The hierarchy's
// resident set — overlays, partitions, walk waves, portal table — all
// scale with nv, so the sparsest connected regular family is what keeps
// the n=1e6 build row inside CI's 2 GB RSS gate (DESIGN.md §15.4).
Graph make_regular3(NodeId n, Rng& rng) {
  return gen::random_regular(n, 3, rng);
}

void BM_HierarchyBuild(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  Rng rng(amix::bench::bench_seed() + n);
  const Graph g = make_regular3(n, rng);
  const HierarchyParams hp = amix::bench::scale_profile(threads, /*leaf_target=*/2000);
  std::uint64_t rounds = 0;
  std::uint32_t depth = 0, retries = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    benchmark::DoNotOptimize(h.stats().build_rounds);
    rounds = ledger.total();
    depth = h.depth();
    retries = h.stats().retries;
  }
  amix::bench::set_memory_counters(state, g.num_edges());
  state.counters["build_rounds"] = static_cast<double>(rounds);
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["retries"] = static_cast<double>(retries);
}

void BM_PipelineMst(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  Rng rng(amix::bench::bench_seed() + n);
  const Graph g = make_regular3(n, rng);
  Rng wrng(amix::bench::bench_seed() + 2 * n + 1);
  const Weights w = distinct_random_weights(g, wrng);
  const HierarchyParams hp = amix::bench::scale_profile(threads, /*leaf_target=*/25);
  std::uint64_t mst_rounds = 0, build_rounds = 0;
  std::uint32_t iters = 0;
  for (auto _ : state) {
    RoundLedger ledger;
    const Hierarchy h = Hierarchy::build(g, hp, ledger);
    build_rounds = ledger.total();
    const MstStats stats = HierarchicalBoruvka(h, w).run(ledger);
    AMIX_CHECK(is_exact_mst(g, w, stats.edges));
    benchmark::DoNotOptimize(stats.rounds);
    mst_rounds = stats.rounds;
    iters = stats.iterations;
  }
  amix::bench::set_memory_counters(state, g.num_edges());
  state.counters["build_rounds"] = static_cast<double>(build_rounds);
  state.counters["mst_rounds"] = static_cast<double>(mst_rounds);
  state.counters["mst_iterations"] = static_cast<double>(iters);
}

// n = 1e7 rows run once (a single build at that size is seconds, and
// variance is dominated by the allocator's first touch anyway); smaller
// rows let google-benchmark pick iteration counts. The 1e7 registrations
// carry an XL name so their rows share no name prefix with the 1e6 rows —
// CI's large-n-smoke job runs and perf-guards the 1e6 family only, and
// perf_guard treats a baseline row with a matching prefix but no current
// counterpart as an error.
BENCHMARK(BM_BuildGnp)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildGnp)->Name("BM_BuildGnpXL")->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_BuildSbm)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BuildSbm)->Name("BM_BuildSbmXL")->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK(BM_WalkSweepGnp)
    ->Args({1'000'000, 1})
    ->Args({1'000'000, 2})
    ->Args({1'000'000, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkSweepGnp)->Name("BM_WalkSweepGnpXL")->Args({10'000'000, 1})
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_WalkSweepSbm)
    ->Args({1'000'000, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalkSweepSbm)->Name("BM_WalkSweepSbmXL")->Args({10'000'000, 1})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// Hierarchy rows run once per configuration: a single build is seconds
// to minutes, and the Las Vegas retry count (not iteration noise) is the
// variance that matters. CI's large-n-smoke runs and perf-guards only
// the serial n=1e6 row (filter `BM_HierarchyBuild/1000000/1/`, where
// the trailing slash is the `/iterations:1` suffix of a fixed-iteration
// row); the thread rows and the XL rows are recorded on the bench
// machine. Note bench_simulator_perf has a small-n `BM_HierarchyBuild/
// <n>` family of its own; the arg arity keeps the row names disjoint.
BENCHMARK(BM_HierarchyBuild)
    ->Args({100'000, 1})
    ->Args({100'000, 2})
    ->Args({100'000, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_HierarchyBuild)
    ->Args({1'000'000, 1})
    ->Args({1'000'000, 2})
    ->Args({1'000'000, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_HierarchyBuild)
    ->Name("BM_HierarchyBuildXL")
    ->Args({10'000'000, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_PipelineMst)
    ->Args({100'000, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_PipelineMst)
    ->Name("BM_PipelineMstXL")
    ->Args({1'000'000, 1})
    ->Args({10'000'000, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
